package nand

import (
	"errors"
	"fmt"
	"math/rand"
)

// Fault injection. Real MLC NAND fails in more ways than wear-out: program
// operations fail transiently (charge-pump noise; a retry succeeds) or
// permanently (a broken cell; the block must be retired), erase operations
// fail outright, reads hit bit errors that ECC either corrects or cannot,
// and chips ship with factory-marked bad blocks. A FaultPlan schedules any
// of these deterministically — at the Nth operation of a kind, or by seeded
// probability — so the FTL's bad-block management and the recovery fuzzer
// can replay identical failure histories.

// FaultKind identifies one injected failure mode.
type FaultKind uint8

const (
	// FaultNone injects nothing.
	FaultNone FaultKind = iota
	// FaultProgramTransient fails one program attempt; the page stays
	// erased and a retry may succeed.
	FaultProgramTransient
	// FaultProgramPermanent fails the program and marks the page's block
	// bad: every later program there fails, and erase is refused.
	FaultProgramPermanent
	// FaultErase fails a block erase and marks the block bad.
	FaultErase
	// FaultReadCorrectable flips bits that ECC corrects: the read succeeds
	// and the correction is counted.
	FaultReadCorrectable
	// FaultReadUncorrectable fails the read beyond ECC's strength.
	FaultReadUncorrectable
)

var (
	// ErrProgramFail is returned when a program operation fails (transient
	// or permanent — firmware cannot tell; it retries, then retires).
	ErrProgramFail = errors.New("nand: program operation failed")
	// ErrEraseFail is returned when an erase fails for a reason other than
	// exhausted endurance; the block is bad and must be retired.
	ErrEraseFail = errors.New("nand: erase operation failed")
	// ErrBadBlock is returned for program/erase attempts on a block already
	// known bad (factory-marked or failed earlier).
	ErrBadBlock = errors.New("nand: bad block")
	// ErrUncorrectable is returned when a read's bit errors exceed ECC.
	ErrUncorrectable = errors.New("nand: uncorrectable read error")
	// ErrPowerCut is returned for program/erase attempts after the armed
	// power-cut point; reads still work, modeling post-restart inspection.
	ErrPowerCut = errors.New("nand: power lost")
	// ErrFaultPlan is returned by SetFaultPlan when a plan fails validation
	// against the chip: out-of-range block or operation indices,
	// out-of-range probabilities, or fault kinds scheduled on the wrong
	// operation class.
	ErrFaultPlan = errors.New("nand: invalid fault plan")
)

// Retirable reports whether err means the affected block is permanently
// unusable and must be taken out of service by the FTL.
func Retirable(err error) bool {
	return errors.Is(err, ErrWornOut) || errors.Is(err, ErrEraseFail) || errors.Is(err, ErrBadBlock)
}

// FaultPlan describes when and how the chip fails. Zero value = no faults.
// Scheduled (Nth-operation) faults take precedence over the seeded
// probabilistic ones; operation counters are 1-based and count attempts of
// that class (programs, erases, reads) including failed ones.
type FaultPlan struct {
	// Seed drives the probabilistic faults; identical plans over identical
	// operation sequences inject identical faults.
	Seed int64
	// FactoryBad lists blocks bad from the start, as on a fresh MLC chip.
	FactoryBad []int

	// Per-operation fault probabilities (0 disables).
	PProgramTransient  float64
	PProgramPermanent  float64
	PErase             float64
	PReadCorrectable   float64
	PReadUncorrectable float64

	progAt  map[int64]FaultKind
	eraseAt map[int64]FaultKind
	readAt  map[int64]FaultKind
}

// NewFaultPlan returns an empty plan with the given probability seed.
func NewFaultPlan(seed int64) *FaultPlan { return &FaultPlan{Seed: seed} }

// AtProgram schedules kind at the nth (1-based) program attempt.
func (p *FaultPlan) AtProgram(n int64, kind FaultKind) *FaultPlan {
	if p.progAt == nil {
		p.progAt = make(map[int64]FaultKind)
	}
	p.progAt[n] = kind
	return p
}

// AtErase schedules kind at the nth (1-based) erase attempt.
func (p *FaultPlan) AtErase(n int64, kind FaultKind) *FaultPlan {
	if p.eraseAt == nil {
		p.eraseAt = make(map[int64]FaultKind)
	}
	p.eraseAt[n] = kind
	return p
}

// AtRead schedules kind at the nth (1-based) read attempt.
func (p *FaultPlan) AtRead(n int64, kind FaultKind) *FaultPlan {
	if p.readAt == nil {
		p.readAt = make(map[int64]FaultKind)
	}
	p.readAt[n] = kind
	return p
}

// validate checks the plan against a chip's geometry before it is
// installed: block references in range, 1-based operation indices,
// probabilities in [0,1] with class sums <= 1, and scheduled kinds that
// belong to the operation class they are scheduled on. All errors wrap
// ErrFaultPlan (and ErrBounds where a range is violated).
func (p *FaultPlan) validate(geo Geometry) error {
	for _, b := range p.FactoryBad {
		if b < 0 || b >= geo.Blocks {
			return fmt.Errorf("%w: %w: factory-bad block %d outside [0,%d)", ErrFaultPlan, ErrBounds, b, geo.Blocks)
		}
	}
	classes := []struct {
		name    string
		at      map[int64]FaultKind
		allowed []FaultKind
	}{
		{"program", p.progAt, []FaultKind{FaultProgramTransient, FaultProgramPermanent}},
		{"erase", p.eraseAt, []FaultKind{FaultErase}},
		{"read", p.readAt, []FaultKind{FaultReadCorrectable, FaultReadUncorrectable}},
	}
	for _, cl := range classes {
		for n, kind := range cl.at {
			if n < 1 {
				return fmt.Errorf("%w: %w: scheduled %s fault at op %d (indices are 1-based)",
					ErrFaultPlan, ErrBounds, cl.name, n)
			}
			ok := kind == FaultNone
			for _, a := range cl.allowed {
				ok = ok || kind == a
			}
			if !ok {
				return fmt.Errorf("%w: fault kind %d cannot be scheduled on a %s operation",
					ErrFaultPlan, kind, cl.name)
			}
		}
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"PProgramTransient", p.PProgramTransient},
		{"PProgramPermanent", p.PProgramPermanent},
		{"PErase", p.PErase},
		{"PReadCorrectable", p.PReadCorrectable},
		{"PReadUncorrectable", p.PReadUncorrectable},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("%w: %s = %v outside [0,1]", ErrFaultPlan, pr.name, pr.v)
		}
	}
	if s := p.PProgramTransient + p.PProgramPermanent; s > 1 {
		return fmt.Errorf("%w: program fault probabilities sum to %v > 1", ErrFaultPlan, s)
	}
	if s := p.PReadCorrectable + p.PReadUncorrectable; s > 1 {
		return fmt.Errorf("%w: read fault probabilities sum to %v > 1", ErrFaultPlan, s)
	}
	return nil
}

// SetFaultPlan validates the plan against the chip's geometry and installs
// it (or, with nil, removes any plan). A plan that fails validation is
// rejected with an error wrapping ErrFaultPlan and the chip is left
// untouched. Factory-bad blocks are marked immediately; the FTL discovers
// them via IsBad when it formats or recovers.
func (c *Chip) SetFaultPlan(p *FaultPlan) error {
	if p != nil {
		if err := p.validate(c.geo); err != nil {
			return err
		}
	}
	c.plan = p
	c.faultRng = nil
	c.planProg, c.planErase, c.planRead = 0, 0, 0
	if p == nil {
		return nil
	}
	c.faultRng = rand.New(rand.NewSource(p.Seed))
	for _, b := range p.FactoryBad {
		c.markBad(b)
	}
	return nil
}

// IsBad reports whether block is out of service: factory-marked or failed a
// program/erase permanently. This models the bad-block marks firmware scans
// from the spare area at attach time.
func (c *Chip) IsBad(block int) bool { return c.blockBad[block] }

// markBad records a newly failed block.
func (c *Chip) markBad(block int) {
	if !c.blockBad[block] {
		c.blockBad[block] = true
		c.badBlocks++
	}
}

// opClass selects which scheduled-fault table and counter an op uses.
type opClass uint8

const (
	opProgram opClass = iota
	opErase
	opRead
)

// nextFault draws the fault (if any) for the next operation of the class.
func (c *Chip) nextFault(class opClass) FaultKind {
	if c.plan == nil {
		return FaultNone
	}
	p := c.plan
	var n int64
	var at map[int64]FaultKind
	switch class {
	case opProgram:
		c.planProg++
		n, at = c.planProg, p.progAt
	case opErase:
		c.planErase++
		n, at = c.planErase, p.eraseAt
	case opRead:
		c.planRead++
		n, at = c.planRead, p.readAt
	}
	if k, ok := at[n]; ok {
		return k
	}
	switch class {
	case opProgram:
		if p.PProgramTransient == 0 && p.PProgramPermanent == 0 {
			return FaultNone
		}
		r := c.faultRng.Float64()
		if r < p.PProgramPermanent {
			return FaultProgramPermanent
		}
		if r < p.PProgramPermanent+p.PProgramTransient {
			return FaultProgramTransient
		}
	case opErase:
		if p.PErase == 0 {
			return FaultNone
		}
		if c.faultRng.Float64() < p.PErase {
			return FaultErase
		}
	case opRead:
		if p.PReadCorrectable == 0 && p.PReadUncorrectable == 0 {
			return FaultNone
		}
		r := c.faultRng.Float64()
		if r < p.PReadUncorrectable {
			return FaultReadUncorrectable
		}
		if r < p.PReadUncorrectable+p.PReadCorrectable {
			return FaultReadCorrectable
		}
	}
	return FaultNone
}

// PowerCutAfter arms the power-cut injector: after n more successful
// program/erase operations, every further program or erase fails with
// ErrPowerCut, freezing flash in the exact state of that boundary. Reads
// keep working so recovery code can inspect the frozen state; callers model
// the restart by FTL.Crash + DisablePowerCut + FTL.Recover.
func (c *Chip) PowerCutAfter(n int64) {
	c.cutArmed = true
	c.cutAt = c.programs + c.erases + n
}

// DisablePowerCut restores power (before running recovery).
func (c *Chip) DisablePowerCut() { c.cutArmed = false }

// MutatingOps returns the number of successful program + erase operations —
// the boundary count a crash-point fuzzer iterates over.
func (c *Chip) MutatingOps() int64 { return c.programs + c.erases }

// powerLost reports whether the armed power-cut point has been reached.
func (c *Chip) powerLost() bool {
	return c.cutArmed && c.programs+c.erases >= c.cutAt
}
