package nand

import (
	"bytes"
	"errors"
	"testing"
)

func testChip(t *testing.T) *Chip {
	t.Helper()
	c, err := New(Geometry{PageSize: 512, PagesPerBlock: 4, Blocks: 8}, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProgramReadRoundTrip(t *testing.T) {
	c := testChip(t)
	data := bytes.Repeat([]byte{0xAB}, 512)
	if _, err := c.Program(3, data, OOB{LPN: 77, Tag: TagData}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	oob, _, err := c.Read(3, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data mismatch")
	}
	if oob.LPN != 77 || oob.Tag != TagData {
		t.Fatalf("oob = %+v", oob)
	}
	if oob.Seq == 0 {
		t.Fatal("program must assign a nonzero sequence number")
	}
}

func TestProgramIsCopyNotAlias(t *testing.T) {
	c := testChip(t)
	data := make([]byte, 512)
	data[0] = 1
	if _, err := c.Program(0, data, OOB{}); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // mutate caller buffer after program
	got := make([]byte, 512)
	if _, _, err := c.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("chip aliased the caller's buffer")
	}
}

func TestNoOverwriteWithoutErase(t *testing.T) {
	c := testChip(t)
	data := make([]byte, 512)
	if _, err := c.Program(5, data, OOB{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program(5, data, OOB{}); !errors.Is(err, ErrProgrammed) {
		t.Fatalf("second program err = %v, want ErrProgrammed", err)
	}
	// Erase block 1 (pages 4..7), then programming page 5 works again.
	if _, err := c.EraseBlock(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program(5, data, OOB{}); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestReadErasedPageFails(t *testing.T) {
	c := testChip(t)
	dst := make([]byte, 512)
	if _, _, err := c.Read(0, dst); !errors.Is(err, ErrFreeRead) {
		t.Fatalf("err = %v, want ErrFreeRead", err)
	}
	if _, err := c.ReadOOB(0); !errors.Is(err, ErrFreeRead) {
		t.Fatalf("oob err = %v, want ErrFreeRead", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	c := testChip(t)
	buf := make([]byte, 512)
	if _, err := c.Program(32, buf, OOB{}); !errors.Is(err, ErrBounds) {
		t.Fatalf("program oob err = %v", err)
	}
	if _, _, err := c.Read(32, buf); !errors.Is(err, ErrBounds) {
		t.Fatalf("read oob err = %v", err)
	}
	if _, err := c.EraseBlock(8); !errors.Is(err, ErrBounds) {
		t.Fatalf("erase oob err = %v", err)
	}
	if _, err := c.EraseBlock(-1); !errors.Is(err, ErrBounds) {
		t.Fatalf("erase negative err = %v", err)
	}
}

func TestWrongSizeBuffers(t *testing.T) {
	c := testChip(t)
	if _, err := c.Program(0, make([]byte, 100), OOB{}); err == nil {
		t.Fatal("short program accepted")
	}
	if _, err := c.Program(0, make([]byte, 512), OOB{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(0, make([]byte, 511)); err == nil {
		t.Fatal("short read buffer accepted")
	}
}

func TestEraseClearsDataAndWearCounts(t *testing.T) {
	c := testChip(t)
	buf := make([]byte, 512)
	for p := uint32(0); p < 4; p++ {
		if _, err := c.Program(p, buf, OOB{LPN: p}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	for p := uint32(0); p < 4; p++ {
		if c.State(p) != PageFree {
			t.Fatalf("page %d not free after erase", p)
		}
	}
	if c.EraseCount(0) != 1 || c.EraseCount(1) != 0 {
		t.Fatalf("erase counts: %d, %d", c.EraseCount(0), c.EraseCount(1))
	}
	st := c.Stats()
	if st.Programs != 4 || st.Erases != 1 || st.MaxWear != 1 || st.MinWear != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	c := testChip(t)
	buf := make([]byte, 512)
	var last uint64
	for p := uint32(0); p < 8; p++ {
		if _, err := c.Program(p, buf, OOB{LPN: p}); err != nil {
			t.Fatal(err)
		}
		oob, err := c.ReadOOB(p)
		if err != nil {
			t.Fatal(err)
		}
		if oob.Seq <= last {
			t.Fatalf("seq not increasing: %d after %d", oob.Seq, last)
		}
		last = oob.Seq
	}
}

func TestTimingCharged(t *testing.T) {
	c := testChip(t)
	tm := c.Timing()
	buf := make([]byte, 512)
	d, err := c.Program(0, buf, OOB{})
	if err != nil {
		t.Fatal(err)
	}
	if d != tm.Transfer+tm.Program {
		t.Fatalf("program duration %d", d)
	}
	_, d, err = c.Read(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if d != tm.ReadPage+tm.Transfer {
		t.Fatalf("read duration %d", d)
	}
	d, err = c.EraseBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if d != tm.Erase {
		t.Fatalf("erase duration %d", d)
	}
}

func TestInvalidGeometry(t *testing.T) {
	if _, err := New(Geometry{}, DefaultTiming()); err == nil {
		t.Fatal("zero geometry accepted")
	}
}
