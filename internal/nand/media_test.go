package nand

import (
	"errors"
	"testing"

	"share/internal/sim"
)

// mediaChip returns a small chip with an installed aging model whose
// thresholds are tiny, so tests can rot pages with a handful of ops.
func mediaChip(t *testing.T, m *MediaModel) *Chip {
	t.Helper()
	c, err := New(Geometry{PageSize: 16, PagesPerBlock: 4, Blocks: 8}, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetMediaModel(m); err != nil {
		t.Fatal(err)
	}
	return c
}

// testModel: no static noise (exact thresholds), fast limit 100,
// shifted-read limit 200, soft-decode limit 300.
func testModel(mut func(*MediaModel)) *MediaModel {
	m := &MediaModel{
		Seed:            7,
		FastLimit:       100,
		RetryLimit:      200,
		SoftLimit:       300,
		RetentionUnit:   sim.Second,
		RetentionWeight: 0,
	}
	if mut != nil {
		mut(m)
	}
	return m
}

func programPage(t *testing.T, c *Chip, ppn uint32) {
	t.Helper()
	buf := make([]byte, c.Geometry().PageSize)
	buf[0] = byte(ppn)
	if _, err := c.Program(ppn, buf, OOB{LPN: ppn}); err != nil {
		t.Fatalf("program ppn %d: %v", ppn, err)
	}
}

func TestMediaModelValidation(t *testing.T) {
	c := mediaChip(t, testModel(nil))
	bad := []*MediaModel{
		testModel(func(m *MediaModel) { m.WearWeight = -1 }),
		testModel(func(m *MediaModel) { m.RetentionWeight = 5; m.RetentionUnit = 0 }),
		testModel(func(m *MediaModel) { m.FastLimit = 0 }),
		testModel(func(m *MediaModel) { m.RetryLimit = m.FastLimit - 1 }),
		testModel(func(m *MediaModel) { m.SoftLimit = m.RetryLimit - 1 }),
	}
	for i, m := range bad {
		if err := c.SetMediaModel(m); !errors.Is(err, ErrMediaModel) {
			t.Errorf("bad model %d: got %v, want ErrMediaModel", i, err)
		}
	}
	if err := c.SetMediaModel(nil); err != nil {
		t.Fatalf("removing model: %v", err)
	}
	if c.MediaEnabled() {
		t.Fatal("model still enabled after removal")
	}
}

// TestReadDisturbEscalation reads one page until its block's disturb risk
// crosses each ECC strength in turn: fast read fails first, the shifted
// re-read still recovers, then the soft decode, and finally nothing does.
func TestReadDisturbEscalation(t *testing.T) {
	c := mediaChip(t, testModel(func(m *MediaModel) { m.DisturbWeight = 1 }))
	programPage(t, c, 0)
	buf := make([]byte, c.Geometry().PageSize)

	// Reads succeed on the fast path until accumulated disturb exceeds
	// FastLimit (risk is assessed before the read's own disturb lands).
	for c.ReadDisturbCount(0) <= 100 {
		if _, _, err := c.Read(0, buf); err != nil {
			t.Fatalf("fast read at disturb %d: %v", c.ReadDisturbCount(0), err)
		}
	}
	if _, _, err := c.Read(0, buf); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("read past FastLimit: got %v, want ErrUncorrectable", err)
	}
	if _, _, err := c.ReadShifted(0, buf); err != nil {
		t.Fatalf("shifted read should recover at risk %d: %v", c.ReadDisturbCount(0), err)
	}
	if buf[0] != 0 {
		t.Fatal("shifted read returned wrong data")
	}
	// Push past RetryLimit: shifted fails, soft decode recovers.
	for c.ReadDisturbCount(0) <= 200 {
		c.ReadShifted(0, buf)
	}
	if _, _, err := c.ReadShifted(0, buf); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("shifted read past RetryLimit: got %v", err)
	}
	if _, _, err := c.ReadSoft(0, buf); err != nil {
		t.Fatalf("soft decode should recover: %v", err)
	}
	// Push past SoftLimit: data loss at every strength.
	for c.ReadDisturbCount(0) <= 300 {
		c.ReadSoft(0, buf)
	}
	if _, _, err := c.ReadSoft(0, buf); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("soft decode past SoftLimit: got %v", err)
	}
	st := c.Stats()
	if st.RetryReads == 0 || st.SoftReads == 0 || st.MediaHardReads == 0 {
		t.Fatalf("ladder counters not populated: %+v", st)
	}
}

// TestRetentionAging rots a block purely by idle time and confirms erase
// resets both retention age and disturb.
func TestRetentionAging(t *testing.T) {
	c := mediaChip(t, testModel(func(m *MediaModel) {
		m.RetentionWeight = 10 // 10 risk units per virtual second
	}))
	programPage(t, c, 0)
	buf := make([]byte, c.Geometry().PageSize)

	c.AdvanceMediaTime(9 * sim.Second) // risk 90 <= 100
	if _, _, err := c.Read(0, buf); err != nil {
		t.Fatalf("read at risk 90: %v", err)
	}
	c.AdvanceMediaTime(2 * sim.Second) // risk 110 > fast limit
	if _, _, err := c.Read(0, buf); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("read past retention limit: got %v", err)
	}
	if r := c.BlockRisk(0); r <= 100 {
		t.Fatalf("BlockRisk = %d, want > 100", r)
	}

	if _, err := c.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if c.ReadDisturbCount(0) != 0 {
		t.Fatal("erase did not reset disturb")
	}
	programPage(t, c, 0)
	if _, _, err := c.Read(0, buf); err != nil {
		t.Fatalf("read after refresh: %v", err)
	}
}

// TestWearRaisesRisk confirms erase cycles contribute permanent risk.
func TestWearRaisesRisk(t *testing.T) {
	c := mediaChip(t, testModel(func(m *MediaModel) { m.WearWeight = 50 }))
	for i := 0; i < 3; i++ {
		if _, err := c.EraseBlock(0); err != nil {
			t.Fatal(err)
		}
	}
	if r := c.BlockRisk(0); r != 150 {
		t.Fatalf("BlockRisk after 3 erases = %d, want 150", r)
	}
	programPage(t, c, 0)
	buf := make([]byte, c.Geometry().PageSize)
	// Risk 151 with the read's own disturb... DisturbWeight is 0 here, so 150.
	if _, _, err := c.Read(0, buf); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("read on worn block: got %v, want ErrUncorrectable", err)
	}
	if _, _, err := c.ReadShifted(0, buf); err != nil {
		t.Fatalf("shifted read on worn block: %v", err)
	}
}

// TestMediaDeterminism: identical seeds give identical weakness maps and
// therefore identical outcomes; different seeds differ.
func TestMediaDeterminism(t *testing.T) {
	risks := func(seed int64) []int64 {
		c := mediaChip(t, testModel(func(m *MediaModel) {
			m.Seed = seed
			m.PageNoise = 1000
		}))
		out := make([]int64, c.Geometry().Blocks)
		for b := range out {
			out[b] = c.BlockRisk(b)
		}
		return out
	}
	a, b, other := risks(42), risks(42), risks(43)
	differ := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different risk at block %d: %d vs %d", i, a[i], b[i])
		}
		differ = differ || a[i] != other[i]
	}
	if !differ {
		t.Fatal("different seeds produced identical weakness maps")
	}
}

// TestFaultPlanOverridesMedia: scheduled read faults win over the model in
// both directions.
func TestFaultPlanOverridesMedia(t *testing.T) {
	c := mediaChip(t, testModel(nil))
	// Fresh, healthy page + scheduled uncorrectable fault at read 1.
	if err := c.SetFaultPlan(NewFaultPlan(1).AtRead(1, FaultReadUncorrectable).AtRead(2, FaultReadCorrectable)); err != nil {
		t.Fatal(err)
	}
	programPage(t, c, 0)
	buf := make([]byte, c.Geometry().PageSize)
	if _, _, err := c.Read(0, buf); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("scheduled fault on healthy page: got %v", err)
	}
	// Scheduled correctable fault succeeds even on a rotten page.
	c.AdvanceMediaTime(1000 * sim.Second)
	c.media.RetentionWeight = 10 // rot everything far past SoftLimit
	if _, _, err := c.Read(0, buf); err != nil {
		t.Fatalf("scheduled correctable fault on rotten page: got %v", err)
	}
	if c.Stats().EccCorrected == 0 {
		t.Fatal("correctable override not counted")
	}
}

func TestMediaClockAccrues(t *testing.T) {
	c := mediaChip(t, testModel(nil))
	start := c.MediaClock()
	programPage(t, c, 0)
	buf := make([]byte, c.Geometry().PageSize)
	c.Read(0, buf)
	c.EraseBlock(1)
	want := c.timing.Transfer + c.timing.Program + c.timing.ReadPage + c.timing.Transfer + c.timing.Erase
	if got := c.MediaClock() - start; got != want {
		t.Fatalf("media clock accrued %d, want %d", got, want)
	}
	c.AdvanceMediaTime(5 * sim.Second)
	if got := c.MediaClock() - start; got != want+5*sim.Second {
		t.Fatalf("AdvanceMediaTime: clock %d, want %d", got, want+5*sim.Second)
	}
}

func TestFaultPlanValidation(t *testing.T) {
	c, err := New(Geometry{PageSize: 16, PagesPerBlock: 4, Blocks: 8}, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		plan *FaultPlan
	}{
		{"factory-bad out of range", &FaultPlan{FactoryBad: []int{8}}},
		{"factory-bad negative", &FaultPlan{FactoryBad: []int{-1}}},
		{"zero op index", NewFaultPlan(1).AtProgram(0, FaultProgramTransient)},
		{"negative op index", NewFaultPlan(1).AtRead(-3, FaultReadCorrectable)},
		{"erase kind on program op", NewFaultPlan(1).AtProgram(1, FaultErase)},
		{"program kind on erase op", NewFaultPlan(1).AtErase(1, FaultProgramPermanent)},
		{"program kind on read op", NewFaultPlan(1).AtRead(1, FaultProgramTransient)},
		{"probability over 1", &FaultPlan{PErase: 1.5}},
		{"negative probability", &FaultPlan{PReadCorrectable: -0.1}},
		{"program probs sum over 1", &FaultPlan{PProgramTransient: 0.6, PProgramPermanent: 0.6}},
		{"read probs sum over 1", &FaultPlan{PReadCorrectable: 0.7, PReadUncorrectable: 0.7}},
	}
	for _, tc := range cases {
		if err := c.SetFaultPlan(tc.plan); !errors.Is(err, ErrFaultPlan) {
			t.Errorf("%s: got %v, want ErrFaultPlan", tc.name, err)
		}
	}
	// A rejected plan must leave the chip untouched.
	if err := c.SetFaultPlan(&FaultPlan{FactoryBad: []int{2, 99}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
	if c.IsBad(2) {
		t.Fatal("rejected plan partially applied: block 2 marked bad")
	}
	if c.plan != nil {
		t.Fatal("rejected plan installed")
	}
	// Valid plans still work, including FaultNone overrides.
	ok := NewFaultPlan(1).
		AtProgram(3, FaultProgramTransient).
		AtErase(2, FaultErase).
		AtRead(5, FaultNone)
	ok.FactoryBad = []int{0, 7}
	ok.PReadCorrectable = 0.5
	ok.PReadUncorrectable = 0.5
	if err := c.SetFaultPlan(ok); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if !c.IsBad(0) || !c.IsBad(7) {
		t.Fatal("factory-bad blocks not marked")
	}
}
