package nand

import "fmt"

// Clone returns an independent chip whose observable state — page data and
// OOB, erase counts, per-die operation counters, bad-block marks, program
// sequence numbers, statistics — is an exact copy of c's, so a workload
// replayed against the clone behaves identically to one replayed against
// the original. Benchmarks use this to pre-condition (age) a device once
// and fan the aged state out across sweep points instead of repeating the
// aging for every point.
//
// Chips carrying a fault plan or a media model refuse to clone: both hold
// mid-stream RNG and decay state whose replication is not supported.
//
// Every field of Chip must either be copied here or be deliberately reset
// (the page-buffer free list, which only affects allocation behavior, not
// results). A field added to Chip and missed here corrupts cloned runs
// silently — the BENCH_*.json determinism gates are the backstop.
func (c *Chip) Clone() (*Chip, error) {
	if c.plan != nil {
		return nil, fmt.Errorf("nand: cannot clone a chip with a fault plan")
	}
	if c.media != nil {
		return nil, fmt.Errorf("nand: cannot clone a chip with a media model")
	}
	n := &Chip{
		geo:    c.geo,
		timing: c.timing,
		seq:    c.seq,
		dies:   c.dies,

		blockBad: append([]bool(nil), c.blockBad...),

		reads:          c.reads,
		programs:       c.programs,
		erases:         c.erases,
		programFails:   c.programFails,
		eraseFails:     c.eraseFails,
		eccCorrected:   c.eccCorrected,
		readFails:      c.readFails,
		badBlocks:      c.badBlocks,
		retryReads:     c.retryReads,
		softReads:      c.softReads,
		mediaHardReads: c.mediaHardReads,
		eraseCount:     append([]int64(nil), c.eraseCount...),
		dieOps:         append([]DieOps(nil), c.dieOps...),
	}
	// Page contents are SHARED, not copied: an aged device holds tens of
	// megabytes of page payloads, and deep-copying them per clone costs
	// more than the aging it is meant to amortize. Sharing is safe because
	// programmed data is immutable — the only in-place mutation ever
	// applied to a stored payload is recycling its buffer through bufFree
	// after an erase. Both sides therefore mark every currently-programmed
	// page as shared; EraseBlock drops a shared buffer instead of recycling
	// it, so whichever side erases first, the other keeps reading valid
	// data, and the buffer is reclaimed by the garbage collector once both
	// have let go.
	n.pages = append([]page(nil), c.pages...)
	if c.shared == nil {
		c.shared = make([]bool, len(c.pages))
	}
	for i := range c.pages {
		c.shared[i] = c.pages[i].data != nil
	}
	n.shared = append([]bool(nil), c.shared...)
	return n, nil
}
