package nand

import "testing"

// TestAddressDecomposition pins the PPN -> (channel, die, block, page)
// mapping: blocks stripe round-robin across dies, dies stripe round-robin
// across channels.
func TestAddressDecomposition(t *testing.T) {
	g := Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32, Channels: 2, DiesPerChannel: 2}
	if got := g.NumDies(); got != 4 {
		t.Fatalf("NumDies = %d, want 4", got)
	}
	if got := g.NumChannels(); got != 2 {
		t.Fatalf("NumChannels = %d, want 2", got)
	}
	cases := []struct {
		ppn                       uint32
		channel, die, block, page int
	}{
		{0, 0, 0, 0, 0},
		{7, 0, 0, 0, 7},
		{8, 1, 1, 1, 0},  // block 1 -> die 1 -> channel 1
		{16, 0, 2, 2, 0}, // block 2 -> die 2 -> channel 0
		{25, 1, 3, 3, 1}, // block 3 -> die 3 -> channel 1
		{32, 0, 0, 4, 0}, // block 4 wraps back to die 0
		{255, 1, 3, 31, 7},
	}
	for _, c := range cases {
		ch, die, block, page := g.Address(c.ppn)
		if ch != c.channel || die != c.die || block != c.block || page != c.page {
			t.Errorf("Address(%d) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				c.ppn, ch, die, block, page, c.channel, c.die, c.block, c.page)
		}
		if got := g.DieOfPPN(c.ppn); got != c.die {
			t.Errorf("DieOfPPN(%d) = %d, want %d", c.ppn, got, c.die)
		}
		if got := g.DieOfBlock(c.block); got != c.die {
			t.Errorf("DieOfBlock(%d) = %d, want %d", c.block, got, c.die)
		}
		if got := g.ChannelOfDie(c.die); got != c.channel {
			t.Errorf("ChannelOfDie(%d) = %d, want %d", c.die, got, c.channel)
		}
	}
}

// TestUnspecifiedGeometryIsSingleDie checks the legacy default: a geometry
// with no channel/die counts behaves as one die on one channel and does
// not opt into per-die scheduling.
func TestUnspecifiedGeometryIsSingleDie(t *testing.T) {
	g := Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32}
	if g.ParallelismSpecified() {
		t.Fatal("unspecified geometry must not report parallelism")
	}
	if g.NumDies() != 1 || g.NumChannels() != 1 {
		t.Fatalf("NumDies=%d NumChannels=%d, want 1/1", g.NumDies(), g.NumChannels())
	}
	for b := 0; b < g.Blocks; b++ {
		if g.DieOfBlock(b) != 0 {
			t.Fatalf("block %d on die %d, want 0", b, g.DieOfBlock(b))
		}
	}
	g2 := Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32, Channels: 1}
	if !g2.ParallelismSpecified() {
		t.Fatal("Channels=1 must opt into per-die scheduling")
	}
}

// TestDieOpCounts checks that program/read/erase attempts are attributed
// to the die they occupy.
func TestDieOpCounts(t *testing.T) {
	g := Geometry{PageSize: 16, PagesPerBlock: 4, Blocks: 8, Channels: 2, DiesPerChannel: 2}
	c, err := New(g, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, g.PageSize)
	// Block 0 -> die 0, block 1 -> die 1, block 5 -> die 1.
	if _, err := c.Program(0, buf, OOB{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program(uint32(g.PagesPerBlock), buf, OOB{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EraseBlock(5); err != nil {
		t.Fatal(err)
	}
	ops := c.DieOpCounts()
	if len(ops) != 4 {
		t.Fatalf("DieOpCounts has %d dies, want 4", len(ops))
	}
	want := []DieOps{
		{Reads: 1, Programs: 1},
		{Programs: 1, Erases: 1},
		{},
		{},
	}
	for d := range want {
		if ops[d] != want[d] {
			t.Errorf("die %d ops = %+v, want %+v", d, ops[d], want[d])
		}
	}
}

// TestNewRejectsMoreDiesThanBlocks guards the striping precondition.
func TestNewRejectsMoreDiesThanBlocks(t *testing.T) {
	g := Geometry{PageSize: 16, PagesPerBlock: 4, Blocks: 2, Channels: 2, DiesPerChannel: 2}
	if _, err := New(g, DefaultTiming()); err == nil {
		t.Fatal("expected error for more dies than blocks")
	}
}
