package nand

import (
	"errors"
	"fmt"

	"share/internal/sim"
)

// Media aging. Real MLC NAND does not fail only when told to: its raw bit
// error rate (RBER) rises endogenously with use. Three mechanisms dominate:
//
//   - wear: every program/erase cycle damages the tunnel oxide, so a
//     block's baseline error rate grows with its erase count;
//   - read disturb: reading a page weakly programs the other pages of its
//     block, so heavily-read blocks accumulate errors in their seldom-read
//     pages;
//   - retention: programmed cells leak charge over time, so data that
//     merely sits there decays, fastest in worn blocks.
//
// MediaModel turns those into a deterministic per-page "risk level": an
// abstract integer proportional to the page's predicted RBER (one unit ==
// 1e-9 RBER, so the default FastLimit of 100_000 is an RBER of 1e-4 —
// mid-life MLC). A read's outcome is classified by comparing the page's
// risk against the strength of the ECC step used:
//
//	risk <= FastLimit/2   clean read
//	risk <= FastLimit     corrected by the fast on-the-fly BCH/LDPC pass
//	risk <= RetryLimit    fast read FAILS; a re-read with a shifted sense
//	                      voltage (Chip.ReadShifted) recovers it
//	risk <= SoftLimit     shifted read fails too; only a soft-decision
//	                      decode over multiple sense levels (Chip.ReadSoft)
//	                      recovers it, at several times the read latency
//	risk >  SoftLimit     uncorrectable at every strength: data loss
//
// Everything is a pure function of the chip's operation history plus a
// seeded static per-page weakness, so identically-seeded runs see
// identical failures. A FaultPlan, when installed, remains the override
// layer: its scheduled and probabilistic read faults take precedence over
// the model's classification.
//
// The model's notion of time is the media clock: the sum of all NAND
// operation service times, plus any idle time the host declares via
// AdvanceMediaTime. Retention age of a block is measured from its last
// erase on that clock.
type MediaModel struct {
	// Seed drives the static per-page weakness spread (some pages are
	// manufactured weaker than others). Identical seeds give identical
	// weakness maps.
	Seed int64

	// WearWeight is the risk added to every page of a block per erase
	// cycle (tunnel-oxide damage).
	WearWeight int64
	// DisturbWeight is the risk added to every page of a block per read
	// of any page in that block (read disturb). Cleared by erase.
	DisturbWeight int64
	// RetentionWeight is the risk added to every page of a block per
	// RetentionUnit elapsed on the media clock since the block's last
	// erase (charge leakage). Cleared by erase.
	RetentionWeight int64
	// RetentionUnit is the media-clock granule RetentionWeight applies
	// per. Must be > 0 when RetentionWeight > 0.
	RetentionUnit sim.Duration

	// PageNoise is the maximum static per-page weakness: each page gets a
	// seeded offset in [0, PageNoise], fixed for the chip's lifetime.
	PageNoise int64

	// ECC correction strengths, in risk units (ascending).
	FastLimit  int64 // fast read path corrects up to here
	RetryLimit int64 // shifted-sense re-read corrects up to here
	SoftLimit  int64 // soft-decision decode corrects up to here
}

// RBERPerRiskUnit converts model risk units to a raw bit error rate:
// risk 100_000 == RBER 1e-4.
const RBERPerRiskUnit = 1e-9

// DefaultMediaModel returns a mid-2010s MLC-class aging model: ~10k erase
// cycles, ~100k block reads, or ~5.5 virtual hours of retention to reach
// the fast ECC limit, with a 20% weak-page spread.
func DefaultMediaModel(seed int64) *MediaModel {
	return &MediaModel{
		Seed:            seed,
		WearWeight:      10,
		DisturbWeight:   1,
		RetentionWeight: 5,
		RetentionUnit:   sim.Second,
		PageNoise:       20_000,
		FastLimit:       100_000,
		RetryLimit:      140_000,
		SoftLimit:       180_000,
	}
}

// ErrMediaModel is returned when a media model's parameters are invalid.
var ErrMediaModel = errors.New("nand: invalid media model")

func (m *MediaModel) validate() error {
	if m.WearWeight < 0 || m.DisturbWeight < 0 || m.RetentionWeight < 0 || m.PageNoise < 0 {
		return fmt.Errorf("%w: negative weight", ErrMediaModel)
	}
	if m.RetentionWeight > 0 && m.RetentionUnit <= 0 {
		return fmt.Errorf("%w: RetentionWeight set with RetentionUnit %d", ErrMediaModel, m.RetentionUnit)
	}
	if m.FastLimit <= 0 || m.RetryLimit < m.FastLimit || m.SoftLimit < m.RetryLimit {
		return fmt.Errorf("%w: ECC limits must satisfy 0 < FastLimit <= RetryLimit <= SoftLimit (got %d/%d/%d)",
			ErrMediaModel, m.FastLimit, m.RetryLimit, m.SoftLimit)
	}
	return nil
}

// SetMediaModel installs (or, with nil, removes) the endogenous aging
// model. Installing resets no history: disturb counters and the media
// clock continue from where they are, so the model can be switched on
// after a setup phase.
func (c *Chip) SetMediaModel(m *MediaModel) error {
	if m == nil {
		c.media = nil
		c.pageWeak = nil
		c.blockWeak = nil
		return nil
	}
	if err := m.validate(); err != nil {
		return err
	}
	mm := *m // private copy: later caller mutation must not change behavior
	c.media = &mm
	c.pageWeak = make([]int64, c.geo.TotalPages())
	c.blockWeak = make([]int64, c.geo.Blocks)
	if c.readDisturb == nil {
		c.readDisturb = make([]int64, c.geo.Blocks)
		c.erasedAt = make([]int64, c.geo.Blocks)
	}
	for ppn := range c.pageWeak {
		w := int64(0)
		if mm.PageNoise > 0 {
			w = int64(splitmix64(uint64(mm.Seed)^(uint64(ppn)*0x9E3779B97F4A7C15)) % uint64(mm.PageNoise+1))
		}
		c.pageWeak[ppn] = w
		if b := ppn / c.geo.PagesPerBlock; w > c.blockWeak[b] {
			c.blockWeak[b] = w
		}
	}
	return nil
}

// splitmix64 is the standard 64-bit finalizer used to derive the static
// per-page weakness from the model seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// MediaEnabled reports whether the endogenous aging model is installed.
func (c *Chip) MediaEnabled() bool { return c.media != nil }

// Media returns the installed aging model, or nil. Callers must treat it
// as read-only.
func (c *Chip) Media() *MediaModel { return c.media }

// AdvanceMediaTime adds idle time to the media clock, aging retained data
// without any operation being issued. Hosts use it to model power-on idle
// periods; NAND operation service times accrue automatically.
func (c *Chip) AdvanceMediaTime(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("nand: negative media time advance %d", d))
	}
	c.mediaClock += d
}

// MediaClock returns the chip's media time: total operation service time
// plus declared idle time, in virtual nanoseconds.
func (c *Chip) MediaClock() sim.Duration { return c.mediaClock }

// tickMedia accrues one operation's service time on the media clock.
func (c *Chip) tickMedia(d sim.Duration) {
	if c.media != nil {
		c.mediaClock += d
	}
}

// blockBaseRisk is the risk shared by every page of block b: wear,
// accumulated read disturb, and retention age since the last erase.
func (c *Chip) blockBaseRisk(b int) int64 {
	m := c.media
	risk := m.WearWeight * c.eraseCount[b]
	risk += m.DisturbWeight * c.readDisturb[b]
	if m.RetentionWeight > 0 {
		age := c.mediaClock - c.erasedAt[b]
		risk += m.RetentionWeight * (age / m.RetentionUnit)
	}
	return risk
}

// pageRisk is the predicted risk level of one physical page.
func (c *Chip) pageRisk(ppn uint32) int64 {
	return c.blockBaseRisk(int(ppn)/c.geo.PagesPerBlock) + c.pageWeak[ppn]
}

// BlockRisk returns the predicted risk of block b's weakest (most
// error-prone) page — the number a patrol scrubber ranks blocks by.
// Returns 0 when no media model is installed.
func (c *Chip) BlockRisk(b int) int64 {
	if c.media == nil {
		return 0
	}
	return c.blockBaseRisk(b) + c.blockWeak[b]
}

// ReadDisturbCount returns block b's accumulated read count since its
// last erase (0 when the model has never been installed).
func (c *Chip) ReadDisturbCount(b int) int64 {
	if c.readDisturb == nil {
		return 0
	}
	return c.readDisturb[b]
}

// readStrength selects which ECC step a read attempt uses.
type readStrength uint8

const (
	strengthFast    readStrength = iota // on-the-fly ECC, base latency
	strengthShifted                     // shifted sense voltage re-read
	strengthSoft                        // soft-decision decode, several senses
)

// limit returns the risk level the strength corrects up to.
func (m *MediaModel) limit(s readStrength) int64 {
	switch s {
	case strengthShifted:
		return m.RetryLimit
	case strengthSoft:
		return m.SoftLimit
	}
	return m.FastLimit
}

// readCost returns the service time of a read attempt at the given
// strength: a shifted re-read pays one extra sense, a soft-decision decode
// samples several reference voltages before decoding.
func (c *Chip) readCost(s readStrength) sim.Duration {
	switch s {
	case strengthShifted:
		return 2*c.timing.ReadPage + c.timing.Transfer
	case strengthSoft:
		return 6*c.timing.ReadPage + c.timing.Transfer
	}
	return c.timing.ReadPage + c.timing.Transfer
}

// classifyRead resolves one read attempt of ppn at the given strength
// against the installed media model (no-op success when none): it charges
// the read's disturb to the block and reports whether the data came back,
// and whether ECC had to correct it.
func (c *Chip) classifyRead(ppn uint32, s readStrength) (ok, corrected bool) {
	if c.media == nil {
		return true, false
	}
	risk := c.pageRisk(ppn)
	// The sense operation itself disturbs the block — including failed
	// attempts — so retries on a rotten block keep aging it.
	c.readDisturb[int(ppn)/c.geo.PagesPerBlock]++
	lim := c.media.limit(s)
	if risk > lim {
		return false, false
	}
	return true, risk > c.media.FastLimit/2
}

// ReadShifted re-reads a page with a shifted sense voltage: the second
// rung of the ECC ladder. It corrects up to the model's RetryLimit at one
// extra page-read of latency. Fault-plan read faults still apply (the
// plan is the override layer).
func (c *Chip) ReadShifted(ppn uint32, dst []byte) (OOB, sim.Duration, error) {
	c.retryReads++
	return c.readAt(ppn, dst, strengthShifted)
}

// ReadSoft performs a soft-decision decode: the last rung of the ECC
// ladder, sampling several sense levels to feed a soft decoder. It
// corrects up to the model's SoftLimit at several times the read latency.
func (c *Chip) ReadSoft(ppn uint32, dst []byte) (OOB, sim.Duration, error) {
	c.softReads++
	return c.readAt(ppn, dst, strengthSoft)
}

// readAt is the shared read path at a given ECC strength (Chip.Read is
// readAt with strengthFast).
func (c *Chip) readAt(ppn uint32, dst []byte, s readStrength) (OOB, sim.Duration, error) {
	if int(ppn) >= len(c.pages) {
		return OOB{}, 0, fmt.Errorf("%w: ppn %d", ErrBounds, ppn)
	}
	p := &c.pages[ppn]
	if p.state != PageProgrammed {
		return OOB{}, 0, fmt.Errorf("%w: ppn %d", ErrFreeRead, ppn)
	}
	if len(dst) != c.geo.PageSize {
		return OOB{}, 0, fmt.Errorf("nand: read size %d != page size %d", len(dst), c.geo.PageSize)
	}
	cost := c.readCost(s)
	c.tickMedia(cost)
	c.dieOps[c.dieOfPPN(ppn)].Reads++
	// The fault plan overrides the media model: a scheduled or seeded read
	// fault decides the outcome no matter how healthy the page is, and a
	// scheduled correctable fault succeeds no matter how rotten.
	switch c.nextFault(opRead) {
	case FaultReadUncorrectable:
		if c.media != nil {
			c.readDisturb[int(ppn)/c.geo.PagesPerBlock]++
		}
		c.readFails++
		return OOB{}, cost, fmt.Errorf("%w: ppn %d", ErrUncorrectable, ppn)
	case FaultReadCorrectable:
		if c.media != nil {
			c.readDisturb[int(ppn)/c.geo.PagesPerBlock]++
		}
		c.eccCorrected++
	default:
		ok, corrected := c.classifyRead(ppn, s)
		if !ok {
			c.readFails++
			if s == strengthFast {
				c.mediaHardReads++
			}
			return OOB{}, cost, fmt.Errorf("%w: ppn %d (risk %d over %s limit)",
				ErrUncorrectable, ppn, c.pageRisk(ppn), s)
		}
		if corrected {
			c.eccCorrected++
		}
	}
	copy(dst, p.data)
	c.reads++
	return p.oob, cost, nil
}

func (s readStrength) String() string {
	switch s {
	case strengthShifted:
		return "shifted-read"
	case strengthSoft:
		return "soft-decode"
	}
	return "fast-read"
}
