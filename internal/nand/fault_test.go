package nand

import (
	"errors"
	"testing"
)

func faultChip(t *testing.T, plan *FaultPlan) *Chip {
	t.Helper()
	c, err := New(Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 16}, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScheduledTransientProgramFault(t *testing.T) {
	c := faultChip(t, NewFaultPlan(1).AtProgram(2, FaultProgramTransient))
	buf := make([]byte, 512)
	if _, err := c.Program(0, buf, OOB{}); err != nil {
		t.Fatalf("program 1: %v", err)
	}
	if _, err := c.Program(1, buf, OOB{}); !errors.Is(err, ErrProgramFail) {
		t.Fatalf("program 2 err = %v, want ErrProgramFail", err)
	}
	if c.State(1) != PageFree {
		t.Fatal("transient failure left page programmed")
	}
	// Retry on the same page succeeds: the fault was transient.
	if _, err := c.Program(1, buf, OOB{}); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if st := c.Stats(); st.ProgramFails != 1 || st.BadBlocks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScheduledPermanentProgramFaultMarksBlockBad(t *testing.T) {
	c := faultChip(t, NewFaultPlan(1).AtProgram(1, FaultProgramPermanent))
	buf := make([]byte, 512)
	if _, err := c.Program(8, buf, OOB{}); !errors.Is(err, ErrProgramFail) {
		t.Fatalf("err = %v", err)
	}
	if !c.IsBad(1) {
		t.Fatal("block 1 not marked bad")
	}
	// Every later program in the block fails, and erase is refused.
	if _, err := c.Program(9, buf, OOB{}); !errors.Is(err, ErrProgramFail) {
		t.Fatalf("program in bad block: %v", err)
	}
	if _, err := c.EraseBlock(1); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("erase of bad block: %v", err)
	}
	if st := c.Stats(); st.BadBlocks != 1 {
		t.Fatalf("bad blocks = %d", st.BadBlocks)
	}
}

func TestScheduledEraseFault(t *testing.T) {
	c := faultChip(t, NewFaultPlan(1).AtErase(1, FaultErase))
	if _, err := c.EraseBlock(3); !errors.Is(err, ErrEraseFail) {
		t.Fatalf("err = %v", err)
	}
	if !c.IsBad(3) {
		t.Fatal("erase-failed block not marked bad")
	}
	// Programmed data in the block would still be readable; a later erase
	// attempt is refused as a bad block.
	if _, err := c.EraseBlock(3); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("second erase err = %v", err)
	}
}

func TestReadFaults(t *testing.T) {
	c := faultChip(t, NewFaultPlan(1).
		AtRead(1, FaultReadCorrectable).
		AtRead(2, FaultReadUncorrectable))
	buf := make([]byte, 512)
	buf[0] = 0xAB
	if _, err := c.Program(0, buf, OOB{}); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 512)
	if _, _, err := c.Read(0, dst); err != nil {
		t.Fatalf("correctable read failed: %v", err)
	}
	if dst[0] != 0xAB {
		t.Fatal("correctable read corrupted data")
	}
	if _, _, err := c.Read(0, dst); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable", err)
	}
	// Third read: no fault scheduled.
	if _, _, err := c.Read(0, dst); err != nil {
		t.Fatalf("clean read: %v", err)
	}
	if st := c.Stats(); st.EccCorrected != 1 || st.ReadFails != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFactoryBadBlocks(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.FactoryBad = []int{2, 7}
	c := faultChip(t, plan)
	if !c.IsBad(2) || !c.IsBad(7) || c.IsBad(3) {
		t.Fatal("factory-bad marks wrong")
	}
	buf := make([]byte, 512)
	if _, err := c.Program(uint32(2*8), buf, OOB{}); !errors.Is(err, ErrProgramFail) {
		t.Fatalf("program in factory-bad block: %v", err)
	}
	plan2 := NewFaultPlan(1)
	plan2.FactoryBad = []int{99}
	c2, _ := New(Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 16}, DefaultTiming())
	if err := c2.SetFaultPlan(plan2); !errors.Is(err, ErrBounds) {
		t.Fatalf("out-of-range factory bad accepted: %v", err)
	}
}

func TestSeededFaultsAreDeterministic(t *testing.T) {
	run := func() (fails int64) {
		plan := NewFaultPlan(42)
		plan.PProgramTransient = 0.2
		c := faultChip(t, plan)
		buf := make([]byte, 512)
		var ppn uint32
		for i := 0; i < 100; i++ {
			if _, err := c.Program(ppn, buf, OOB{}); err == nil {
				ppn++
			}
		}
		return c.Stats().ProgramFails
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("no transient faults injected at p=0.2 over 100 programs")
	}
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d failures", a, b)
	}
}

func TestPowerCutFreezesMutations(t *testing.T) {
	c := faultChip(t, nil)
	buf := make([]byte, 512)
	for i := uint32(0); i < 4; i++ {
		if _, err := c.Program(i, buf, OOB{}); err != nil {
			t.Fatal(err)
		}
	}
	c.PowerCutAfter(2)
	if _, err := c.Program(4, buf, OOB{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EraseBlock(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program(5, buf, OOB{}); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("program after cut: %v", err)
	}
	if _, err := c.EraseBlock(3); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("erase after cut: %v", err)
	}
	// Reads still work (post-restart inspection of frozen flash).
	dst := make([]byte, 512)
	if _, _, err := c.Read(0, dst); err != nil {
		t.Fatalf("read after cut: %v", err)
	}
	if got := c.MutatingOps(); got != 6 {
		t.Fatalf("mutating ops = %d, want 6", got)
	}
	c.DisablePowerCut()
	if _, err := c.Program(5, buf, OOB{}); err != nil {
		t.Fatalf("program after power restore: %v", err)
	}
}

func TestRetirableClassification(t *testing.T) {
	for _, err := range []error{ErrWornOut, ErrEraseFail, ErrBadBlock} {
		if !Retirable(err) {
			t.Fatalf("%v not retirable", err)
		}
	}
	for _, err := range []error{ErrProgramFail, ErrUncorrectable, ErrPowerCut, nil} {
		if Retirable(err) {
			t.Fatalf("%v retirable", err)
		}
	}
}
