package innodb

import (
	"fmt"
	"strings"
	"testing"

	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

// fastCacheDevice builds the dedicated cache-tier device: smaller and
// faster than the data device, like the SLC cache drive FaCE assumes.
func fastCacheDevice(t *testing.T) *ssd.Device {
	t.Helper()
	cfg := ssd.DefaultConfig(128)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.Timing = nand.Timing{
		ReadPage: 25 * sim.Microsecond,
		Program:  200 * sim.Microsecond,
		Erase:    1000 * sim.Microsecond,
		Transfer: 5 * sim.Microsecond,
	}
	dev, err := ssd.New("cache", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// newCacheRig builds a rig with a third (cache) device attached and a
// pool small enough that reads spill through it.
func newCacheRig(t *testing.T, writeBack bool) (*testRig, *ssd.Device) {
	t.Helper()
	cacheDev := fastCacheDevice(t)
	r := newRig(t, DWBOn, func(c *Config) {
		c.PoolBytes = 16 * 1024 // 16 frames: evictions happen fast
		c.CacheDev = cacheDev
		c.CacheWriteBack = writeBack
	})
	if _, err := r.eng.CreateTable(r.task, "t"); err != nil {
		t.Fatal(err)
	}
	return r, cacheDev
}

// reopenAll crashes every device (data, log, cache) and reopens the
// engine — a whole-machine power failure.
func (r *testRig) reopenAll(t *testing.T, cacheDev *ssd.Device) {
	t.Helper()
	for _, d := range []*ssd.Device{r.logDev, cacheDev} {
		d.Crash()
		d.DisablePowerCut()
		if err := d.Recover(r.task); err != nil {
			t.Fatal(err)
		}
	}
	r.reopen(t)
}

func cacheVal(i int) string {
	return fmt.Sprintf("v%04d-%s", i, strings.Repeat("x", 160))
}

// fillAndVerify inserts n rows and reads them all back twice: the second
// sweep runs over a pool too small to hold them, so misses go through
// the cache tier.
func fillAndVerify(t *testing.T, r *testRig, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		put(t, r, "t", fmt.Sprintf("k%04d", i), cacheVal(i))
	}
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < n; i++ {
			v, ok := get(t, r, "t", fmt.Sprintf("k%04d", i))
			if !ok || v != cacheVal(i) {
				t.Fatalf("sweep %d key k%04d: got %q ok=%v", sweep, i, v, ok)
			}
		}
	}
}

func TestCacheServesEvictedPages(t *testing.T) {
	r, _ := newCacheRig(t, false)
	fillAndVerify(t, r, 120)
	st := r.eng.Stats()
	if st.CacheFills == 0 {
		t.Fatal("no clean evictions reached the cache")
	}
	if st.CacheHits == 0 {
		t.Fatal("no pool misses were served from the cache")
	}
	if st.CacheDegraded {
		t.Fatal("cache degraded on a healthy device")
	}
}

func TestCacheFaultedReadsFallBackToMain(t *testing.T) {
	r, cacheDev := newCacheRig(t, false)
	fillAndVerify(t, r, 120)
	// From here on every cache read has a high chance of failing; the
	// engine must keep returning correct data from the tablespace.
	plan := nand.NewFaultPlan(7)
	plan.PReadUncorrectable = 0.5
	if err := cacheDev.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	fillAndVerify(t, r, 120)
	st := r.eng.Stats()
	if st.CacheVerifyFails == 0 {
		t.Fatal("fault plan injected no cache read failures; test proves nothing")
	}
}

func TestCachePowerCutDegradesEngineKeepsServing(t *testing.T) {
	r, cacheDev := newCacheRig(t, false)
	fillAndVerify(t, r, 60)
	cacheDev.PowerCutAfter(0)
	// Writes and reads keep working: fills are swallowed, reads that the
	// dead device still serves are verified, the tablespace covers the rest.
	fillAndVerify(t, r, 120)
	st := r.eng.Stats()
	if !st.CacheDegraded {
		t.Fatal("engine stats never surfaced cache degradation")
	}
	if r.eng.Degraded() {
		t.Fatal("cache-device loss must not degrade the engine itself")
	}
	if got := cacheDev.Metrics().EventCounts()["cache-degraded"]; got != 1 {
		t.Fatalf("cache-degraded events = %d, want 1", got)
	}
}

func TestCacheWarmAfterRestart(t *testing.T) {
	r, cacheDev := newCacheRig(t, false)
	fillAndVerify(t, r, 120)
	// Persist the cache map, then cut power everywhere.
	if err := r.eng.Checkpoint(r.task); err != nil {
		t.Fatal(err)
	}
	r.reopenAll(t, cacheDev)

	cst := r.eng.Cache().Stats()
	if cst.RevalidatedKept == 0 {
		t.Fatal("no cache entries survived the restart — cache came back cold")
	}
	// The surviving entries serve immediately, before any new eviction.
	for i := 0; i < 120; i++ {
		v, ok := get(t, r, "t", fmt.Sprintf("k%04d", i))
		if !ok || v != cacheVal(i) {
			t.Fatalf("key k%04d wrong after warm restart", i)
		}
	}
	if hits := r.eng.Stats().CacheHits; hits == 0 {
		t.Fatal("warm cache produced no hits after restart")
	}
}

func TestCacheWriteBackDurability(t *testing.T) {
	r, cacheDev := newCacheRig(t, true)
	fillAndVerify(t, r, 120)
	st := r.eng.Stats()
	if st.CacheDirtyFills == 0 {
		t.Fatal("write-back mode absorbed no flush batches")
	}

	// Crash without a checkpoint: redo replay must reproduce every row
	// even though flushed pages only ever reached the cache device.
	r.reopenAll(t, cacheDev)
	for i := 0; i < 120; i++ {
		v, ok := get(t, r, "t", fmt.Sprintf("k%04d", i))
		if !ok || v != cacheVal(i) {
			t.Fatalf("key k%04d lost across write-back crash", i)
		}
	}
}

func TestCacheWriteBackCheckpointDrainsDirty(t *testing.T) {
	r, cacheDev := newCacheRig(t, true)
	fillAndVerify(t, r, 120)
	if err := r.eng.Checkpoint(r.task); err != nil {
		t.Fatal(err)
	}
	st := r.eng.Stats()
	if st.CacheWritebacks == 0 {
		t.Fatal("checkpoint drained no dirty cache entries")
	}
	if dr := r.eng.Cache().Stats().DirtyResident; dr != 0 {
		t.Fatalf("%d dirty entries survived the checkpoint", dr)
	}

	// After the checkpoint the tablespace holds everything; even losing
	// the whole cache map is harmless.
	r.reopenAll(t, cacheDev)
	for i := 0; i < 120; i++ {
		v, ok := get(t, r, "t", fmt.Sprintf("k%04d", i))
		if !ok || v != cacheVal(i) {
			t.Fatalf("key k%04d lost after checkpointed crash", i)
		}
	}
}

func TestCacheWriteBackDegradedFallsBackToPipeline(t *testing.T) {
	r, cacheDev := newCacheRig(t, true)
	fillAndVerify(t, r, 60)
	cacheDev.PowerCutAfter(0)
	// Flush batches must reroute to the regular doublewrite pipeline.
	fillAndVerify(t, r, 120)
	if err := r.eng.Checkpoint(r.task); err != nil {
		t.Fatal(err)
	}
	if !r.eng.Stats().CacheDegraded {
		t.Fatal("degradation not surfaced")
	}
	// Full-machine restart: committed data intact without the cache.
	r.reopenAll(t, cacheDev)
	for i := 0; i < 120; i++ {
		v, ok := get(t, r, "t", fmt.Sprintf("k%04d", i))
		if !ok || v != cacheVal(i) {
			t.Fatalf("key k%04d lost across degraded-cache crash", i)
		}
	}
}

func TestCacheStatsFlowThroughEngine(t *testing.T) {
	r, _ := newCacheRig(t, false)
	fillAndVerify(t, r, 80)
	st := r.eng.Stats()
	cst := r.eng.Cache().Stats()
	if st.CacheHits != cst.Hits || st.CacheFills != cst.Fills ||
		st.CacheVerifyFails != cst.VerifyFailures || st.CacheDegraded != cst.Degraded {
		t.Fatalf("engine stats %+v diverge from cache stats %+v", st, cst)
	}
}
