package innodb

import (
	"fmt"
	"sync"
	"testing"

	"share/internal/sim"
)

// TestGroupCommitCoalesces runs many concurrent scheduler sessions
// committing against one engine and checks that (a) every committed key
// is readable afterwards, (b) the group-commit rendezvous actually
// coalesced syncs — fewer leader fsyncs than commits — and (c) at least
// some transactions rode another session's sync. Scheduler tasks overlap
// in virtual time: while the leader's log flush burns simulated
// microseconds, the other sessions apply and append, exactly the overlap
// the group-commit protocol exploits.
func TestGroupCommitCoalesces(t *testing.T) {
	r := newRig(t, Share, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}

	const sessions = 8
	const txnsPer = 20
	sched := sim.NewScheduler()
	var failMu sync.Mutex
	var failErr error
	for s := 0; s < sessions; s++ {
		s := s
		sched.Go(fmt.Sprintf("sess%d", s), func(task *sim.Task) {
			for i := 0; i < txnsPer; i++ {
				tx := r.eng.Begin(task)
				k := fmt.Sprintf("s%02d-k%04d", s, i)
				if err := tx.Put(r.eng.Table("kv"), []byte(k), []byte("v-"+k)); err != nil {
					tx.Rollback()
					failMu.Lock()
					failErr = err
					failMu.Unlock()
					return
				}
				if err := tx.Commit(); err != nil {
					failMu.Lock()
					failErr = err
					failMu.Unlock()
					return
				}
			}
		})
	}
	sched.Run()
	if failErr != nil {
		t.Fatal(failErr)
	}

	st := r.eng.Stats()
	if st.Commits != sessions*txnsPer {
		t.Fatalf("Commits = %d, want %d", st.Commits, sessions*txnsPer)
	}
	if st.GroupCommits >= st.Commits {
		t.Fatalf("GroupCommits = %d not < Commits = %d: no coalescing", st.GroupCommits, st.Commits)
	}
	if st.GroupedTxns == 0 {
		t.Fatal("GroupedTxns = 0: no transaction rode another session's sync")
	}
	t.Logf("commits=%d leader-syncs=%d grouped=%d", st.Commits, st.GroupCommits, st.GroupedTxns)

	for s := 0; s < sessions; s++ {
		for i := 0; i < txnsPer; i++ {
			k := fmt.Sprintf("s%02d-k%04d", s, i)
			if v, ok := get(t, r, "kv", k); !ok || v != "v-"+k {
				t.Fatalf("key %s = %q, %v after concurrent commits", k, v, ok)
			}
		}
	}
}

// TestGroupCommitSurvivesCrash crashes the data device while concurrent
// sessions are mid-commit-stream, then verifies recovery: every key whose
// Commit returned before the crash point must be present with its full
// value (no torn transactions), and the engine must reopen cleanly.
func TestGroupCommitSurvivesCrash(t *testing.T) {
	r := newRig(t, DWBOn, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}

	const sessions = 4
	const txnsPer = 15
	var mu sync.Mutex
	committed := make(map[string]string)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			task := sim.NewSoloTask(fmt.Sprintf("sess%d", s))
			for i := 0; i < txnsPer; i++ {
				tx := r.eng.Begin(task)
				// Multi-key transactions: a torn commit would surface as a
				// partially visible key set after recovery.
				k1 := fmt.Sprintf("s%d-a%04d", s, i)
				k2 := fmt.Sprintf("s%d-b%04d", s, i)
				v := fmt.Sprintf("val-%d-%d", s, i)
				if tx.Put(r.eng.Table("kv"), []byte(k1), []byte(v)) != nil ||
					tx.Put(r.eng.Table("kv"), []byte(k2), []byte(v)) != nil {
					tx.Rollback()
					return
				}
				if err := tx.Commit(); err != nil {
					return
				}
				mu.Lock()
				committed[k1] = v
				committed[k2] = v
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()

	// Crash both devices and recover.
	r.reopen(t)

	for k, v := range committed {
		got, ok := get(t, r, "kv", k)
		if !ok || got != v {
			t.Fatalf("committed key %s = %q, %v after crash recovery; want %q", k, got, ok, v)
		}
	}
}
