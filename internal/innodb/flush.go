package innodb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"share/internal/btree"
	"share/internal/bufpool"
	"share/internal/core"
	"share/internal/extcache"
	"share/internal/sim"
	"share/internal/ssd"
)

const dwbMagic = 0x44574221 // "DWB!"

// flusher implements bufpool.Flusher with the engine's three pipelines.
type flusher struct{ e *Engine }

// FlushBatch writes one batch of dirty pages durably according to the
// configured mode. Every page image is stamped with its page number, the
// current LSN and a checksum before leaving the pool, so torn writes are
// detectable and the doublewrite restore can match images to homes.
func (fl *flusher) FlushBatch(t *sim.Task, pages []bufpool.PageImage) error {
	e := fl.e
	atomic.AddInt64(&e.st.FlushBatches, 1)
	lsn := uint64(e.log.LSN())
	for _, pg := range pages {
		btree.SetPageNo(pg.Data, pg.PageNo)
		btree.SetLSN(pg.Data, lsn)
		btree.SetChecksum(pg.Data)
	}
	// Write-back cache mode: the batch lands on the cache device instead
	// of the tablespace. The images are already redo-durable (no-steal),
	// so a cache that degrades mid-batch simply falls back to the regular
	// pipeline below — nothing is lost either way.
	if e.cache != nil && e.cfg.CacheWriteBack {
		if done, err := fl.cacheBatch(t, pages); done {
			return err
		}
	}
	var err error
	switch e.cfg.FlushMode {
	case DWBOff:
		err = fl.writeHome(t, pages, true)
	case DWBOn:
		if err = fl.writeDWB(t, pages); err == nil {
			err = fl.writeHome(t, pages, true)
		}
	case Share:
		if err = fl.writeDWB(t, pages); err == nil {
			err = fl.shareHome(t, pages)
		}
	case AtomicWrite:
		err = fl.atomicHome(t, pages)
	default:
		err = fmt.Errorf("innodb: unknown flush mode %d", e.cfg.FlushMode)
	}
	if err != nil {
		return err
	}
	// The tablespace copies just moved past whatever the cache holds.
	if e.cache != nil {
		for _, pg := range pages {
			e.cache.Invalidate(t, pg.PageNo)
		}
	}
	return nil
}

// cacheBatch routes one flush batch into the write-back cache. It returns
// done=false when the batch should instead take the regular pipeline: the
// cache is degraded, or it is saturated with dirty entries and a
// writeback attempt could not drain it.
func (fl *flusher) cacheBatch(t *sim.Task, pages []bufpool.PageImage) (done bool, err error) {
	e := fl.e
	for _, pg := range pages {
		perr := e.cache.PutDirty(t, pg.PageNo, pg.Data)
		if errors.Is(perr, extcache.ErrCacheFull) {
			// Drain dirty entries to their homes and retry this page once.
			if werr := e.cacheWriteback(t); werr == nil {
				perr = e.cache.PutDirty(t, pg.PageNo, pg.Data)
			}
		}
		if perr != nil {
			// Degraded (or still full): replay the whole batch through the
			// regular pipeline. Pages already absorbed stay cached as dirty —
			// writing the full batch home keeps them consistent, and the
			// Invalidate pass in FlushBatch drops their stale entries.
			return false, nil
		}
	}
	e.cache.SyncJournal(t)
	return true, nil
}

// cacheWriteback drains every dirty cache entry to its tablespace home
// and syncs the file — the write-back half of a checkpoint, also used to
// un-saturate the cache mid-run.
func (e *Engine) cacheWriteback(t *sim.Task) error {
	wrote := false
	err := e.cache.WritebackAll(t, func(t *sim.Task, pageNo uint32, data []byte) error {
		wrote = true
		return e.homeWrite(t, pageNo, data)
	})
	if err != nil {
		return err
	}
	if wrote {
		return e.file.Sync(t)
	}
	return nil
}

// homeWrite writes one engine page at its tablespace home with the same
// stream steering as writeHome.
func (e *Engine) homeWrite(t *sim.Task, pageNo uint32, data []byte) error {
	stream := e.file.Stream()
	if e.cfg.StreamHints && e.fs.Device().Streams() > 1 {
		if pageNo != 0 && btree.IsLeaf(data) {
			stream = streamHeap
		} else {
			stream = streamIndex
		}
	}
	if _, err := e.file.WriteAtStream(t, data, int64(e.cfg.PageSize)*int64(pageNo), stream); err != nil {
		return err
	}
	atomic.AddInt64(&e.st.PagesToHome, 1)
	return nil
}

// atomicHome writes the batch once at the home locations through the
// FTL's atomic multi-page write command. Engine pages span several device
// pages; each device-level command is atomic, and a torn engine page
// (split across two commands, or a command boundary at a crash) is
// repaired by redo replay — the commit record made the page images
// durable before the flush began.
func (fl *flusher) atomicHome(t *sim.Task, pages []bufpool.PageImage) error {
	e := fl.e
	ps := int64(e.cfg.PageSize)
	dev := e.fs.Device()
	unit := dev.PageSize()
	perEngine := e.cfg.PageSize / unit
	maxBatch := dev.MaxShareBatch() // atomic limit is the delta page, same as SHARE
	var batch []ssd.AtomicPage
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := dev.WriteAtomic(t, batch)
		batch = batch[:0]
		return err
	}
	for _, pg := range pages {
		exts, err := e.file.MapRange(ps*int64(pg.PageNo), ps)
		if err != nil {
			return err
		}
		i := 0
		for _, ext := range exts {
			for j := uint32(0); j < ext.Len; j++ {
				if len(batch)+1 > maxBatch {
					if err := flush(); err != nil {
						return err
					}
				}
				batch = append(batch, ssd.AtomicPage{
					LPN:  ext.Start + j,
					Data: pg.Data[i*unit : (i+1)*unit],
				})
				i++
			}
		}
		if i != perEngine {
			return fmt.Errorf("innodb: engine page %d maps to %d device pages, want %d",
				pg.PageNo, i, perEngine)
		}
		atomic.AddInt64(&e.st.PagesToHome, 1)
	}
	return flush()
}

// writeDWB writes the batch sequentially into the doublewrite file —
// header page first, then one slot per image — and fsyncs it.
func (fl *flusher) writeDWB(t *sim.Task, pages []bufpool.PageImage) error {
	e := fl.e
	ps := int64(e.cfg.PageSize)
	hdr := make([]byte, e.cfg.PageSize)
	e.dwbSeq++
	binary.LittleEndian.PutUint32(hdr[4:], dwbMagic)
	binary.LittleEndian.PutUint64(hdr[8:], e.dwbSeq)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(pages)))
	off := 20
	for _, pg := range pages {
		binary.LittleEndian.PutUint32(hdr[off:], pg.PageNo)
		off += 4
	}
	binary.LittleEndian.PutUint32(hdr[0:], checksum32(hdr[4:]))
	if _, err := e.dwb.WriteAt(t, hdr, 0); err != nil {
		return err
	}
	for i, pg := range pages {
		if _, err := e.dwb.WriteAt(t, pg.Data, ps*int64(1+i)); err != nil {
			return err
		}
		atomic.AddInt64(&e.st.PagesToDWB, 1)
	}
	return e.dwb.Sync(t)
}

// writeHome writes each image at its home location in the tablespace.
// With stream hints on, each page is steered by what it holds: leaf pages
// to the heap stream, interior/meta pages to the index stream — B+tree
// interior pages are rewritten far more often than leaves, so segregating
// them keeps mostly-cold leaf blocks out of GC's way.
func (fl *flusher) writeHome(t *sim.Task, pages []bufpool.PageImage, sync bool) error {
	e := fl.e
	ps := int64(e.cfg.PageSize)
	hinted := e.cfg.StreamHints && e.fs.Device().Streams() > 1
	for _, pg := range pages {
		stream := e.file.Stream()
		if hinted {
			if pg.PageNo != 0 && btree.IsLeaf(pg.Data) {
				stream = streamHeap
			} else {
				stream = streamIndex
			}
		}
		if _, err := e.file.WriteAtStream(t, pg.Data, ps*int64(pg.PageNo), stream); err != nil {
			return err
		}
		atomic.AddInt64(&e.st.PagesToHome, 1)
	}
	if sync {
		return e.file.Sync(t)
	}
	return nil
}

// shareHome installs the batch at its home locations without writing: the
// home LPNs are remapped onto the doublewrite copies with SHARE commands.
// When the SHARE calls return, the mapping change is durable (§4.2.2), so
// no further fsync of the tablespace is needed.
func (fl *flusher) shareHome(t *sim.Task, pages []bufpool.PageImage) error {
	e := fl.e
	ps := int64(e.cfg.PageSize)
	var pairs []ssd.Pair
	for i, pg := range pages {
		dst, err := e.file.MapRange(ps*int64(pg.PageNo), ps)
		if err != nil {
			return err
		}
		src, err := e.dwb.MapRange(ps*int64(1+i), ps)
		if err != nil {
			return err
		}
		// Both files are preallocated contiguously, so an engine page is
		// one extent on each side; split defensively if not.
		di, si := 0, 0
		dOff, sOff := uint32(0), uint32(0)
		for di < len(dst) && si < len(src) {
			run := dst[di].Len - dOff
			if r := src[si].Len - sOff; r < run {
				run = r
			}
			pairs = append(pairs, ssd.Pair{
				Dst: dst[di].Start + dOff,
				Src: src[si].Start + sOff,
				Len: run,
			})
			dOff += run
			sOff += run
			if dOff == dst[di].Len {
				di++
				dOff = 0
			}
			if sOff == src[si].Len {
				si++
				sOff = 0
			}
		}
		atomic.AddInt64(&e.st.SharePairs, 1)
	}
	return core.ShareAll(t, e.fs.Device(), pairs)
}

func checksum32(b []byte) uint32 {
	var h uint32 = 2166136261
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}
