package innodb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"share/internal/sim"
)

// Redo record kinds.
const (
	recPageImage = 1 // [kind u8][pageNo u32][image ...]
	recCommit    = 2 // [kind u8]
)

// Txn is one transaction. Writes are buffered (read-your-writes) and
// applied to the trees only at commit, after the redo records are durable,
// so an uncommitted transaction never reaches storage and rollback is
// simply discarding the buffer.
type Txn struct {
	e      *Engine
	t      *sim.Task
	writes map[int]map[string]*[]byte // table id -> key -> value (nil = delete)
	order  []writeRef                 // apply order
	done   bool
}

type writeRef struct {
	table int
	key   string
}

// Begin starts a transaction, taking the engine's transaction lock. The
// lock wait is charged to the task's virtual clock.
func (e *Engine) Begin(t *sim.Task) *Txn {
	e.mu.Lock(t)
	return &Txn{e: e, t: t, writes: make(map[int]map[string]*[]byte)}
}

// Get reads a key, observing the transaction's own uncommitted writes.
func (tx *Txn) Get(tb *Table, key []byte) ([]byte, bool, error) {
	if m, ok := tx.writes[tb.id]; ok {
		if v, ok := m[string(key)]; ok {
			if v == nil {
				return nil, false, nil
			}
			out := make([]byte, len(*v))
			copy(out, *v)
			return out, true, nil
		}
	}
	return tb.tree.Get(tx.t, key)
}

// Put buffers an insert/update.
func (tx *Txn) Put(tb *Table, key, val []byte) error {
	v := make([]byte, len(val))
	copy(v, val)
	tx.record(tb.id, key, &v)
	return nil
}

// Delete buffers a delete.
func (tx *Txn) Delete(tb *Table, key []byte) error {
	tx.record(tb.id, key, nil)
	return nil
}

func (tx *Txn) record(table int, key []byte, val *[]byte) {
	m, ok := tx.writes[table]
	if !ok {
		m = make(map[string]*[]byte)
		tx.writes[table] = m
	}
	ks := string(key)
	if _, seen := m[ks]; !seen {
		tx.order = append(tx.order, writeRef{table: table, key: ks})
	}
	m[ks] = val
}

// Scan iterates committed keys in [start, end); like InnoDB's read views
// it does not merge the transaction's own uncommitted buffer (the
// workloads here never scan what they just wrote).
func (tx *Txn) Scan(tb *Table, start, end []byte, fn func(k, v []byte) bool) error {
	return tb.tree.Scan(tx.t, start, end, fn)
}

// Commit makes the transaction durable and visible:
//
//  1. apply the buffered writes to the trees (pages dirtied here are
//     protected from flushing — no-steal);
//  2. log a full image of every page the transaction dirtied (first
//     write of redo), then a commit record;
//  3. release the transaction lock and join the group-commit rendezvous:
//     one leader fsyncs the log for every commit record appended so far,
//     so concurrent sessions share a single flush (see Engine.groupSync);
//  4. once the record is durable, release the no-steal pins.
//
// The dirtied pages stay pinned (refcounted, via e.protect) across the
// group sync: another session holding e.mu may trigger an adaptive flush
// while this commit awaits durability, and stealing a subset of this
// transaction's pages would put a torn transaction on disk.
//
// A crash before the commit record is durable leaves no trace: dirty
// pages never reached the tablespace. A crash after it is replayed from
// the page images.
func (tx *Txn) Commit() error {
	t := tx.t
	e := tx.e
	if tx.done {
		return fmt.Errorf("innodb: commit of finished txn")
	}
	tx.done = true

	if len(tx.order) == 0 {
		e.mu.Unlock(t)
		return nil
	}
	if e.degraded.Load() {
		e.mu.Unlock(t)
		return ErrReadOnly
	}

	// Make room in the redo ring before touching anything.
	if e.log.Remaining() < 256 || e.imagesSinceCkpt > e.cfg.MaxLogImages {
		if err := e.checkpointLocked(t); err != nil {
			e.mu.Unlock(t)
			return err
		}
	}

	// 1. Apply to trees under no-steal protection.
	e.applying = true
	e.txnPages = make(map[uint32]bool)
	fail := func(err error) error {
		e.applying = false
		e.mu.Unlock(t)
		return err
	}
	for _, ref := range tx.order {
		tb := e.tables[e.order[ref.table]]
		v := tx.writes[ref.table][ref.key]
		var err error
		if v == nil {
			_, err = tb.tree.Delete(t, []byte(ref.key))
		} else {
			err = tb.tree.Put(t, []byte(ref.key), *v)
		}
		if err != nil {
			return fail(err)
		}
	}
	if err := e.persistMeta(t); err != nil { // roots/hwm may have moved
		return fail(err)
	}

	// 2. Redo: full images of dirtied pages, then the commit record.
	rec := make([]byte, 5+e.cfg.PageSize)
	dirtied := make([]uint32, 0, len(e.txnPages))
	for pageNo := range e.txnPages {
		dirtied = append(dirtied, pageNo)
	}
	sort.Slice(dirtied, func(i, j int) bool { return dirtied[i] < dirtied[j] })
	for _, pageNo := range dirtied {
		f, err := e.pool.Get(t, pageNo)
		if err != nil {
			return fail(err)
		}
		rec[0] = recPageImage
		binary.LittleEndian.PutUint32(rec[1:], pageNo)
		copy(rec[5:], f.Data)
		f.Release()
		if _, err := e.log.Append(t, rec); err != nil {
			return fail(err)
		}
		e.imagesSinceCkpt++
	}
	myLSN, err := e.log.Append(t, []byte{recCommit})
	if err != nil {
		return fail(e.noteDeviceErr(err))
	}

	// 3. Hand the pages over to the refcounted pin set (it outlives e.mu),
	// register with the group-commit drain counter, and release the
	// transaction lock so the next session can apply while we sync.
	e.protect(dirtied)
	e.applying = false
	e.txnPages = make(map[uint32]bool)
	e.gcMu.Lock(t)
	e.gcUnsynced++
	e.gcMu.Unlock(t)
	e.mu.Unlock(t)

	err = e.groupSync(t, myLSN)

	// 4. Durable (or failed): drop the no-steal pins either way — on a
	// failed sync the engine degrades and nothing flushes anymore.
	e.unprotect(dirtied)
	if err != nil {
		return e.noteDeviceErr(err)
	}
	atomic.AddInt64(&e.st.Commits, 1)

	// Adaptive flushing: keep the dirty ratio under control so foreground
	// evictions rarely stall (InnoDB's page cleaner, done synchronously).
	// Pool access requires e.mu, so the ratio is checked under it.
	e.mu.Lock(t)
	var ferr error
	if float64(e.pool.DirtyCount()) > e.cfg.DirtyRatio*float64(e.pool.Capacity()) {
		ferr = e.pool.FlushSome(t, e.cfg.DWBPages)
	}
	e.mu.Unlock(t)
	if ferr != nil {
		// The commit record is already durable: the transaction
		// committed. A read-only device only stops the background
		// flush; redo still covers the committed pages.
		if derr := e.noteDeviceErr(ferr); !errors.Is(derr, ErrReadOnly) {
			return ferr
		}
	}
	return nil
}

// Rollback discards the buffered writes.
func (tx *Txn) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	tx.e.mu.Unlock(tx.t)
}

// keyUpperBound returns the smallest key greater than every key with the
// given prefix — a helper for prefix scans in the workloads.
func KeyUpperBound(prefix []byte) []byte {
	out := bytes.Clone(prefix)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil // prefix of all 0xFF: scan to end
}
