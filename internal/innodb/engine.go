// Package innodb implements a miniature MySQL/InnoDB-style storage
// engine: B+tree tables in a single tablespace file, a buffer pool with
// deferred batch flushing, a redo log on a separate device, checkpoints,
// and — the heart of the reproduction — four dirty-page flush pipelines:
//
//	DWBOn       — the default double-write: the batch is first written
//	              sequentially to the doublewrite buffer and fsynced, then
//	              each page is written again at its home location (§2.1);
//	DWBOff      — pages go straight to their home locations (fast but
//	              exposed to torn pages);
//	Share       — the paper's mode: the batch is written once to the
//	              doublewrite buffer, then SHARE remaps every home page
//	              onto the just-written copy, eliminating the second
//	              write (§4.3);
//	AtomicWrite — the §6.1 related-work baseline: one atomic multi-page
//	              write command, no doublewrite area at all.
//
// Crash recovery restores torn pages from the doublewrite buffer (by
// checksum), then replays committed redo records. Redo uses page images
// logged at commit time — physically simpler than InnoDB's physiological
// records but recovery-equivalent; the log lives on its own fast device,
// as in the paper's experimental setup.
package innodb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"share/internal/btree"
	"share/internal/bufpool"
	"share/internal/extcache"
	"share/internal/fsim"
	"share/internal/ftl"
	"share/internal/sim"
	"share/internal/ssd"
	"share/internal/wal"
)

// ErrReadOnly is returned by mutating operations after the underlying
// device degraded to read-only (spare blocks exhausted). Reads keep
// serving from the buffer pool and the still-readable tablespace.
var ErrReadOnly = errors.New("innodb: engine is read-only (device degraded)")

// FlushMode selects the dirty-page flush pipeline.
type FlushMode int

// Flush pipelines.
const (
	DWBOn FlushMode = iota
	DWBOff
	Share
	// AtomicWrite uses the §6.1 related-work baseline: the whole batch is
	// written once through the FTL's atomic multi-page write command, so
	// no doublewrite area is needed at all. Unlike SHARE, the interface
	// requires the full page set up front and cannot express zero-copy
	// compaction.
	AtomicWrite
)

func (m FlushMode) String() string {
	switch m {
	case DWBOn:
		return "DWB-On"
	case DWBOff:
		return "DWB-Off"
	case Share:
		return "SHARE"
	case AtomicWrite:
		return "AtomicWrite"
	}
	return "?"
}

// Config sizes the engine.
type Config struct {
	Name         string // tablespace file name
	PageSize     int    // engine page size (multiple of the device page)
	PoolBytes    int64  // buffer pool size in bytes
	FlushMode    FlushMode
	DWBPages     int     // doublewrite batch size in engine pages
	DataBytes    int64   // preallocated tablespace size
	LogPages     uint32  // redo ring size on the log device (device pages)
	DirtyRatio   float64 // flush when dirty frames exceed this fraction
	MaxLogImages int     // checkpoint when more page images than this are logged
	// StreamHints tags device writes with per-object stream hints on
	// multi-stream devices: heap (leaf) pages, index/meta pages and the
	// doublewrite buffer each get their own stream on the data device, and
	// the redo log claims stream 0 of its own device. No effect when the
	// devices are single-stream.
	StreamHints bool
	// CacheDev attaches a flash-extended buffer cache on its own device:
	// clean buffer-pool evictions spill to it and misses try it before
	// the tablespace. The cache map is persistent, so it comes back warm
	// after a crash (revalidated against the tablespace); a faulted,
	// degraded or power-cut cache device never fails a transaction — the
	// engine just stops getting hits (Stats.CacheDegraded).
	CacheDev *ssd.Device
	// CacheWriteBack switches the cache to durable-dirty mode: flush
	// batches land on the cache device (journaled in its mapping journal)
	// instead of the tablespace, and checkpoints write dirty entries back
	// before truncating redo. If the cache degrades mid-run, flushes fall
	// back to the regular pipeline. Requires CacheDev.
	CacheWriteBack bool
}

// Stream layout when StreamHints is on (hints are clamped by the device,
// so fewer configured streams degrade gracefully toward sharing).
const (
	streamHeap  = 0 // leaf pages: the bulk of flush traffic
	streamIndex = 1 // interior/meta pages: hotter, rewritten on splits
	streamDWB   = 2 // doublewrite slots: overwritten every batch, shortest-lived
)

// DefaultConfig fills unset fields with experiment defaults.
func (c *Config) setDefaults(devPage int) error {
	if c.Name == "" {
		c.Name = "ibdata"
	}
	if c.PageSize == 0 {
		c.PageSize = 4 * devPage
	}
	if c.PageSize%devPage != 0 {
		return fmt.Errorf("innodb: page size %d not a multiple of device page %d", c.PageSize, devPage)
	}
	if c.PoolBytes == 0 {
		c.PoolBytes = int64(c.PageSize) * 256
	}
	if c.DWBPages == 0 {
		c.DWBPages = 32
	}
	if c.DataBytes == 0 {
		c.DataBytes = int64(c.PageSize) * 2048
	}
	if c.LogPages == 0 {
		c.LogPages = 4096
	}
	if c.DirtyRatio == 0 {
		c.DirtyRatio = 0.6
	}
	if c.MaxLogImages == 0 {
		c.MaxLogImages = 4096
	}
	return nil
}

const metaMagic = 0x494E4D54 // "INMT"

// Engine is one database instance.
//
// Concurrency and locking hierarchy (acquire downward, never upward):
//
//	e.mu (transaction latch) → e.gcMu (group-commit state)
//	e.mu → fs latch / wal latch → sim resources
//	e.protMu / atomics — leaf locks, no yields underneath
//
// Nothing acquires e.mu while holding gcMu; the commit path releases
// e.mu before joining the group-commit rendezvous so the log fsync
// overlaps other sessions' apply phases (checkpointLocked's drain takes
// gcMu under e.mu, which the hierarchy permits).
//
// A session holds e.mu from Begin through apply and redo append, then
// releases it and joins the group-commit pipeline (gcMu/gcCond), so the
// expensive log fsync overlaps the next session's apply phase.
type Engine struct {
	fs     *fsim.FS
	file   *fsim.File
	dwb    *fsim.File
	logDev *ssd.Device
	log    *wal.Log
	pool   *bufpool.Pool
	cache  *extcache.Cache // nil without Config.CacheDev
	cfg    Config

	mu     sim.Mutex // transaction lock (coarse two-phase locking)
	tables map[string]*Table
	order  []string // table creation order: index = table id in redo records

	hwm    uint32 // next free engine page (page 0 is the meta page)
	dwbSeq uint64

	// Redo bookkeeping, guarded by e.mu.
	txnPages        map[uint32]bool // pages dirtied by the txn being applied (no-steal)
	applying        bool
	imagesSinceCkpt int

	// Group commit: transactions that appended their commit record release
	// e.mu and rendezvous here. The first becomes the leader and issues one
	// log sync for every record appended so far; the rest wait for its
	// broadcast. gcUnsynced counts commits between append and durability —
	// checkpoints drain it before truncating redo.
	gcMu       sim.Mutex
	gcCond     sim.Cond // broadcast after each completed sync attempt
	gcDrain    sim.Cond // broadcast when gcUnsynced drops to zero
	gcSyncing  bool     // a leader's sync is in flight
	gcDurable  int64    // log LSN horizon made durable by group syncs
	gcGen      uint64   // completed sync attempts (failure detection)
	gcErr      error    // outcome of the most recent sync attempt
	gcUnsynced int      // commits appended but not yet durable

	// protected holds refcounted no-steal pins: pages applied by a commit
	// whose record is not yet durable. It outlives e.mu (released only
	// after the group sync), so it has its own leaf lock.
	protMu    sync.Mutex
	protected map[uint32]int

	// degraded is latched when a device write fails with ftl.ErrReadOnly;
	// from then on mutating operations fail fast with ErrReadOnly while
	// reads keep serving. Committed-but-unflushed pages stay in the pool
	// and in the redo log (which is never truncated after degradation).
	degraded atomic.Bool

	st Stats // counters updated via atomics; read with Stats()
}

// Table is a named B+tree.
type Table struct {
	e    *Engine
	name string
	id   int
	tree *btree.Tree
}

// Stats counts engine activity.
type Stats struct {
	Commits      int64
	FlushBatches int64
	PagesToDWB   int64 // engine pages written into the doublewrite buffer
	PagesToHome  int64 // engine pages written at home locations
	SharePairs   int64 // home pages installed by SHARE instead of a write
	Checkpoints  int64
	TornRestored int64 // pages restored from the DWB at recovery
	RedoApplied  int64 // page images applied at recovery

	GroupCommits int64 // log syncs issued by group-commit leaders
	GroupedTxns  int64 // commits that rode another transaction's sync

	ReadOnlyTransitions int64 // device degradations observed (0 or 1)
	Degraded            bool  // gauge: engine is serving read-only

	// Extended-cache telemetry (zero without Config.CacheDev).
	CacheHits        int64 // pool misses served from the cache device
	CacheFills       int64 // clean evictions spilled to the cache
	CacheDirtyFills  int64 // flush pages absorbed by the write-back cache
	CacheWritebacks  int64 // dirty cache entries written back at checkpoints
	CacheVerifyFails int64 // cache reads rejected by verify-on-read
	CacheDegraded    bool  // gauge: cache device stopped accepting fills
}

// Open creates or recovers an engine on fs with its redo log on logDev.
func Open(t *sim.Task, fs *fsim.FS, logDev *ssd.Device, cfg Config) (*Engine, error) {
	if err := cfg.setDefaults(fs.Device().PageSize()); err != nil {
		return nil, err
	}
	e := &Engine{
		fs:        fs,
		logDev:    logDev,
		cfg:       cfg,
		tables:    make(map[string]*Table),
		txnPages:  make(map[uint32]bool),
		protected: make(map[uint32]int),
		hwm:       1,
	}
	log, err := wal.New(logDev, 0, cfg.LogPages)
	if err != nil {
		return nil, err
	}
	e.log = log

	existing := fs.Exists(cfg.Name)
	if existing {
		if e.file, err = fs.Open(t, cfg.Name); err != nil {
			return nil, err
		}
		if e.dwb, err = fs.Open(t, cfg.Name+".dwb"); err != nil {
			return nil, err
		}
	} else {
		if e.file, err = fs.Create(t, cfg.Name); err != nil {
			return nil, err
		}
		if err = e.file.Allocate(t, 0, cfg.DataBytes); err != nil {
			return nil, err
		}
		if e.dwb, err = fs.Create(t, cfg.Name+".dwb"); err != nil {
			return nil, err
		}
		if err = e.dwb.Allocate(t, 0, int64(cfg.DWBPages+1)*int64(cfg.PageSize)); err != nil {
			return nil, err
		}
	}

	if cfg.StreamHints {
		if fs.Device().Streams() > 1 {
			e.file.SetStream(streamHeap) // per-page override in writeHome
			e.dwb.SetStream(streamDWB)
		}
		if logDev.Streams() > 0 {
			// Redo lives alone on the log device; pinning it to stream 0
			// keeps each group commit one coalesced flush into one block.
			e.log.SetStream(0)
		}
	}

	poolPages := int(cfg.PoolBytes / int64(cfg.PageSize))
	pool, err := bufpool.New(e.file, cfg.PageSize, poolPages, &flusher{e: e})
	if err != nil {
		return nil, err
	}
	pool.FlushBatchSize = cfg.DWBPages
	pool.Protected = func(pageNo uint32) bool {
		return (e.applying && e.txnPages[pageNo]) || e.pinned(pageNo)
	}
	pool.OnDirty = func(pageNo uint32) {
		if e.applying {
			e.txnPages[pageNo] = true
		}
	}
	e.pool = pool

	if existing {
		if err := e.recover(t); err != nil {
			return nil, err
		}
	} else {
		if err := e.initMeta(t); err != nil {
			return nil, err
		}
		if err := fs.SyncMeta(t); err != nil {
			return nil, err
		}
	}
	// The extended cache attaches after recovery: redo replay has rolled
	// the tablespace to the newest committed state, so the cache map's
	// revalidation compares surviving entries against final content.
	if cfg.CacheDev != nil {
		if err := e.attachCache(t, cfg.CacheDev); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// attachCache opens the flash-extended cache on dev (recovering any
// surviving warm map) and wires it into the buffer pool: misses try the
// cache before the tablespace, and clean evictions fill it.
func (e *Engine) attachCache(t *sim.Task, dev *ssd.Device) error {
	ps := int64(e.cfg.PageSize)
	c, err := extcache.Open(t, dev, extcache.Config{
		PageSize: e.cfg.PageSize,
		Durable:  e.cfg.CacheWriteBack,
		MainRead: func(t *sim.Task, pageNo uint32, dst []byte) error {
			_, err := e.file.ReadAt(t, dst, ps*int64(pageNo))
			return err
		},
		PageLSN: func(d []byte) (uint64, bool) {
			return btree.LSN(d), btree.VerifyChecksum(d)
		},
	})
	if err != nil {
		return err
	}
	e.cache = c
	e.pool.CacheRead = func(t *sim.Task, pageNo uint32, dst []byte) (bool, error) {
		return c.Get(t, pageNo, dst)
	}
	e.pool.OnEvict = func(t *sim.Task, pageNo uint32, data []byte) {
		c.Put(t, pageNo, data)
	}
	return nil
}

// Cache exposes the flash-extended cache (nil when not configured).
func (e *Engine) Cache() *extcache.Cache { return e.cache }

// initMeta formats the meta page of a fresh tablespace.
func (e *Engine) initMeta(t *sim.Task) error {
	f, err := e.pool.Get(t, 0)
	if err != nil {
		return err
	}
	for i := range f.Data {
		f.Data[i] = 0
	}
	binary.LittleEndian.PutUint32(f.Data[12:], metaMagic)
	binary.LittleEndian.PutUint32(f.Data[16:], e.hwm)
	f.MarkDirty()
	f.Release()
	return nil
}

// persistMeta serializes the registry into the meta page frame.
// Layout (after the common 12-byte checksum/LSN header):
//
//	12 u32 magic, 16 u32 hwm, 20 u16 table count; entries start at 26
//	(bytes 22..26 hold the page number stamped at flush time): per table
//	[nameLen u8][name][root u32]
func (e *Engine) persistMeta(t *sim.Task) error {
	f, err := e.pool.Get(t, 0)
	if err != nil {
		return err
	}
	d := f.Data
	for i := 12; i < len(d); i++ {
		d[i] = 0
	}
	binary.LittleEndian.PutUint32(d[12:], metaMagic)
	binary.LittleEndian.PutUint32(d[16:], e.hwm)
	binary.LittleEndian.PutUint16(d[20:], uint16(len(e.order)))
	off := 26
	for _, name := range e.order {
		tb := e.tables[name]
		d[off] = byte(len(name))
		copy(d[off+1:], name)
		off += 1 + len(name)
		binary.LittleEndian.PutUint32(d[off:], tb.tree.Root())
		off += 4
	}
	f.MarkDirty()
	f.Release()
	return nil
}

// loadMeta parses the meta page and rebuilds the table registry.
func (e *Engine) loadMeta(t *sim.Task) error {
	f, err := e.pool.Get(t, 0)
	if err != nil {
		return err
	}
	defer f.Release()
	d := f.Data
	if binary.LittleEndian.Uint32(d[12:]) != metaMagic {
		return fmt.Errorf("innodb: bad meta page magic")
	}
	e.hwm = binary.LittleEndian.Uint32(d[16:])
	n := int(binary.LittleEndian.Uint16(d[20:]))
	e.tables = make(map[string]*Table)
	e.order = nil
	off := 26
	for i := 0; i < n; i++ {
		nl := int(d[off])
		name := string(d[off+1 : off+1+nl])
		off += 1 + nl
		root := binary.LittleEndian.Uint32(d[off:])
		off += 4
		tb := &Table{e: e, name: name, id: i}
		tb.tree = btree.Open(&pager{e: e}, root, tb.onRootChange)
		e.tables[name] = tb
		e.order = append(e.order, name)
	}
	return nil
}

// pager adapts the engine to the btree.Pager interface.
type pager struct{ e *Engine }

func (p *pager) Get(t *sim.Task, pageNo uint32) (*bufpool.Frame, error) {
	return p.e.pool.Get(t, pageNo)
}

func (p *pager) Alloc(t *sim.Task) (uint32, error) {
	e := p.e
	n := e.hwm
	if int64(n+1)*int64(e.cfg.PageSize) > e.cfg.DataBytes {
		return 0, fmt.Errorf("innodb: tablespace full (%d pages)", n)
	}
	e.hwm++
	if err := e.persistMeta(t); err != nil {
		return 0, err
	}
	return n, nil
}

func (p *pager) Free(t *sim.Task, pageNo uint32) error { return nil }
func (p *pager) PageSize() int                         { return p.e.cfg.PageSize }

func (tb *Table) onRootChange(uint32) {
	// The new root is persisted with the rest of the registry; the caller
	// is inside a transaction apply, so the meta page is logged with it.
	// persistMeta needs a task; root changes only happen under apply, and
	// the engine persists the registry at the end of every apply.
}

// CreateTable registers a new table with an empty root.
func (e *Engine) CreateTable(t *sim.Task, name string) (*Table, error) {
	e.mu.Lock(t)
	defer e.mu.Unlock(t)
	if e.degraded.Load() {
		return nil, ErrReadOnly
	}
	if _, ok := e.tables[name]; ok {
		return nil, fmt.Errorf("innodb: table %s exists", name)
	}
	root, err := (&pager{e: e}).Alloc(t)
	if err != nil {
		return nil, err
	}
	f, err := e.pool.Get(t, root)
	if err != nil {
		return nil, err
	}
	btree.InitPage(f.Data)
	f.MarkDirty()
	f.Release()
	tb := &Table{e: e, name: name, id: len(e.order)}
	tb.tree = btree.Open(&pager{e: e}, root, tb.onRootChange)
	e.tables[name] = tb
	e.order = append(e.order, name)
	if err := e.persistMeta(t); err != nil {
		return nil, err
	}
	// DDL is made durable immediately (redo records only cover DML).
	if err := e.checkpointLocked(t); err != nil {
		return nil, err
	}
	return tb, nil
}

// Table returns a registered table or nil.
func (e *Engine) Table(name string) *Table { return e.tables[name] }

// Stats returns a snapshot of engine counters. Counters are maintained
// with atomics, so the snapshot is safe to take while sessions run.
func (e *Engine) Stats() Stats {
	var st Stats
	st.Commits = atomic.LoadInt64(&e.st.Commits)
	st.FlushBatches = atomic.LoadInt64(&e.st.FlushBatches)
	st.PagesToDWB = atomic.LoadInt64(&e.st.PagesToDWB)
	st.PagesToHome = atomic.LoadInt64(&e.st.PagesToHome)
	st.SharePairs = atomic.LoadInt64(&e.st.SharePairs)
	st.Checkpoints = atomic.LoadInt64(&e.st.Checkpoints)
	st.TornRestored = atomic.LoadInt64(&e.st.TornRestored)
	st.RedoApplied = atomic.LoadInt64(&e.st.RedoApplied)
	st.GroupCommits = atomic.LoadInt64(&e.st.GroupCommits)
	st.GroupedTxns = atomic.LoadInt64(&e.st.GroupedTxns)
	st.ReadOnlyTransitions = atomic.LoadInt64(&e.st.ReadOnlyTransitions)
	st.Degraded = e.degraded.Load()
	if e.cache != nil {
		cs := e.cache.Stats()
		st.CacheHits = cs.Hits
		st.CacheFills = cs.Fills
		st.CacheDirtyFills = cs.DirtyFills
		st.CacheWritebacks = cs.Writebacks
		st.CacheVerifyFails = cs.VerifyFailures
		st.CacheDegraded = cs.Degraded
	}
	return st
}

// Degraded reports whether the engine has switched to read-only serving.
func (e *Engine) Degraded() bool { return e.degraded.Load() }

// noteDeviceErr translates a device-level read-only failure into the
// engine's typed error, latching the degraded state (and counting the
// transition) the first time it is seen. Other errors pass through.
func (e *Engine) noteDeviceErr(err error) error {
	if err == nil || !errors.Is(err, ftl.ErrReadOnly) {
		return err
	}
	if e.degraded.CompareAndSwap(false, true) {
		atomic.AddInt64(&e.st.ReadOnlyTransitions, 1)
	}
	return ErrReadOnly
}

// pinned reports whether pageNo carries a no-steal pin from a commit
// whose record is not yet durable.
func (e *Engine) pinned(pageNo uint32) bool {
	e.protMu.Lock()
	defer e.protMu.Unlock()
	return e.protected[pageNo] > 0
}

// protect pins pages against stealing until unprotect. Pins are
// refcounted: concurrent commits may dirty the same page.
func (e *Engine) protect(pages []uint32) {
	e.protMu.Lock()
	for _, p := range pages {
		e.protected[p]++
	}
	e.protMu.Unlock()
}

// unprotect drops the pins taken by protect.
func (e *Engine) unprotect(pages []uint32) {
	e.protMu.Lock()
	for _, p := range pages {
		if e.protected[p]--; e.protected[p] <= 0 {
			delete(e.protected, p)
		}
	}
	e.protMu.Unlock()
}

// groupSync makes the commit record at myLSN durable, coalescing with
// concurrent commits: the first arrival becomes the leader and issues one
// log sync covering every record appended so far; later arrivals wait for
// its broadcast and only sync themselves if the leader's flush predates
// their append. Called without e.mu, so the fsync overlaps other
// sessions' apply phases. Returns the outcome of the sync that covered
// (or failed) this transaction.
func (e *Engine) groupSync(t *sim.Task, myLSN int64) error {
	e.gcMu.Lock(t)
	grouped := false
	var err error
	for err == nil && e.gcDurable <= myLSN {
		if e.gcSyncing {
			grouped = true
			gen := e.gcGen
			e.gcCond.Wait(t, &e.gcMu)
			if e.gcGen != gen && e.gcErr != nil && e.gcDurable <= myLSN {
				err = e.gcErr
			}
			continue
		}
		e.gcSyncing = true
		e.gcMu.Unlock(t)
		serr := e.log.Sync(t)
		durable := e.log.DurableLSN()
		e.gcMu.Lock(t)
		e.gcSyncing = false
		e.gcGen++
		e.gcErr = serr
		if serr == nil {
			if durable > e.gcDurable {
				e.gcDurable = durable
			}
			atomic.AddInt64(&e.st.GroupCommits, 1)
		} else {
			err = serr
		}
		e.gcCond.Broadcast(t)
	}
	if grouped && err == nil {
		atomic.AddInt64(&e.st.GroupedTxns, 1)
	}
	e.gcUnsynced--
	if e.gcUnsynced == 0 {
		e.gcDrain.Broadcast(t)
	}
	e.gcMu.Unlock(t)
	return err
}

// Pool exposes buffer pool statistics.
func (e *Engine) Pool() *bufpool.Pool { return e.pool }

// Log exposes the redo log (for experiment instrumentation).
func (e *Engine) Log() *wal.Log { return e.log }

// Checkpoint flushes all dirty pages and truncates the redo log. After
// degradation it refuses: truncating redo while dirty pages cannot reach
// their homes would lose committed data.
func (e *Engine) Checkpoint(t *sim.Task) error {
	e.mu.Lock(t)
	defer e.mu.Unlock(t)
	return e.checkpointLocked(t)
}

// checkpointLocked is Checkpoint with e.mu already held. It first drains
// in-flight group commits: their records must be durable before the redo
// log is truncated underneath them. The drain cannot deadlock — every
// unsynced commit released e.mu before joining groupSync, and holding
// e.mu here stops new commits from appending, so gcUnsynced only falls.
func (e *Engine) checkpointLocked(t *sim.Task) error {
	if e.degraded.Load() {
		return ErrReadOnly
	}
	e.gcMu.Lock(t)
	for e.gcUnsynced > 0 {
		e.gcDrain.Wait(t, &e.gcMu)
	}
	e.gcMu.Unlock(t)
	if err := e.pool.FlushAll(t); err != nil {
		return e.noteDeviceErr(err)
	}
	// Write-back cache: dirty cache entries must reach their tablespace
	// homes before redo is truncated — after this point redo no longer
	// covers them, so the cache must not be their sole holder. A failed
	// writeback (unreadable dirty entry on a dying cache device) aborts
	// the checkpoint: redo is preserved and nothing committed is lost.
	if e.cache != nil && e.cfg.CacheWriteBack {
		if err := e.cacheWriteback(t); err != nil {
			return e.noteDeviceErr(err)
		}
	}
	if err := e.fs.SyncMeta(t); err != nil {
		return e.noteDeviceErr(err)
	}
	if err := e.log.Truncate(t); err != nil {
		return e.noteDeviceErr(err)
	}
	if e.cache != nil {
		// Persist the cache map alongside the engine checkpoint so a crash
		// restarts with a warm cache (failures only cost warmness).
		e.cache.Checkpoint(t)
	}
	e.imagesSinceCkpt = 0
	atomic.AddInt64(&e.st.Checkpoints, 1)
	return nil
}
