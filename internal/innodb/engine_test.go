package innodb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"share/internal/fsim"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

// testRig builds a small data device + fast log device + fs + engine.
type testRig struct {
	data   *ssd.Device
	logDev *ssd.Device
	fs     *fsim.FS
	eng    *Engine
	task   *sim.Task
}

func fastLogDevice(t *testing.T) *ssd.Device {
	t.Helper()
	cfg := ssd.DefaultConfig(256)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond,
		Program:  50 * sim.Microsecond,
		Erase:    500 * sim.Microsecond,
		Transfer: 5 * sim.Microsecond,
	}
	cfg.FTL.PowerCapacitor = true
	dev, err := ssd.New("log", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func newRig(t *testing.T, mode FlushMode, mut func(*Config)) *testRig {
	t.Helper()
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	data, err := ssd.New("data", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		t.Fatal(err)
	}
	logDev := fastLogDevice(t)
	ecfg := Config{
		PageSize:  1024,
		PoolBytes: 64 * 1024,
		FlushMode: mode,
		DWBPages:  8,
		DataBytes: 1024 * 1024,
		LogPages:  2048,
	}
	if mut != nil {
		mut(&ecfg)
	}
	eng, err := Open(task, fs, logDev, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{data: data, logDev: logDev, fs: fs, eng: eng, task: task}
}

// reopen simulates a crash of the data device and reopens the engine.
func (r *testRig) reopen(t *testing.T) {
	t.Helper()
	r.data.Crash()
	if err := r.data.Recover(r.task); err != nil {
		t.Fatal(err)
	}
	fs, err := fsim.Mount(r.task, r.data)
	if err != nil {
		t.Fatal(err)
	}
	r.fs = fs
	cfg := r.eng.cfg
	eng, err := Open(r.task, fs, r.logDev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
}

func put(t *testing.T, r *testRig, table, k, v string) {
	t.Helper()
	tx := r.eng.Begin(r.task)
	if err := tx.Put(r.eng.Table(table), []byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, r *testRig, table, k string) (string, bool) {
	t.Helper()
	tx := r.eng.Begin(r.task)
	defer tx.Rollback()
	v, ok, err := tx.Get(r.eng.Table(table), []byte(k))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

func TestBasicCRUD(t *testing.T) {
	for _, mode := range []FlushMode{DWBOn, DWBOff, Share} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode, nil)
			if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
				t.Fatal(err)
			}
			put(t, r, "kv", "alpha", "1")
			put(t, r, "kv", "beta", "2")
			if v, ok := get(t, r, "kv", "alpha"); !ok || v != "1" {
				t.Fatalf("alpha = %q %v", v, ok)
			}
			put(t, r, "kv", "alpha", "updated")
			if v, _ := get(t, r, "kv", "alpha"); v != "updated" {
				t.Fatalf("alpha = %q", v)
			}
			tx := r.eng.Begin(r.task)
			if err := tx.Delete(r.eng.Table("kv"), []byte("beta")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if _, ok := get(t, r, "kv", "beta"); ok {
				t.Fatal("beta survived delete")
			}
		})
	}
}

func TestReadYourWrites(t *testing.T) {
	r := newRig(t, DWBOn, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}
	tx := r.eng.Begin(r.task)
	tb := r.eng.Table("kv")
	if err := tx.Put(tb, []byte("k"), []byte("mine")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tx.Get(tb, []byte("k"))
	if err != nil || !ok || string(v) != "mine" {
		t.Fatalf("read-your-write failed: %q %v %v", v, ok, err)
	}
	if err := tx.Delete(tb, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.Get(tb, []byte("k")); ok {
		t.Fatal("delete not visible in txn")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackDiscards(t *testing.T) {
	r := newRig(t, DWBOn, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}
	tx := r.eng.Begin(r.task)
	if err := tx.Put(r.eng.Table("kv"), []byte("ghost"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if _, ok := get(t, r, "kv", "ghost"); ok {
		t.Fatal("rolled-back write visible")
	}
}

func TestCommittedDataSurvivesCrash(t *testing.T) {
	for _, mode := range []FlushMode{DWBOn, Share} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode, nil)
			if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				put(t, r, "kv", fmt.Sprintf("key%04d", i), fmt.Sprintf("val%d", i))
			}
			r.reopen(t)
			for i := 0; i < 200; i++ {
				v, ok := get(t, r, "kv", fmt.Sprintf("key%04d", i))
				if !ok || v != fmt.Sprintf("val%d", i) {
					t.Fatalf("key%04d = %q %v after crash", i, v, ok)
				}
			}
		})
	}
}

func TestCrashMidFlushRestoresFromDWB(t *testing.T) {
	// Torn home write: simulate a crash where only the first half of an
	// engine page reached the tablespace. The doublewrite copy restores it.
	r := newRig(t, DWBOn, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		put(t, r, "kv", fmt.Sprintf("key%04d", i), "stable")
	}
	if err := r.eng.Checkpoint(r.task); err != nil {
		t.Fatal(err)
	}
	// Tear a page at its home location. Only a page in the most recent
	// doublewrite batch can be mid-write at a crash, so pick one from the
	// DWB header: write garbage over its first device page, as an
	// interrupted multi-LPN write would leave it.
	hdr := make([]byte, r.eng.cfg.PageSize)
	if _, err := r.eng.dwb.ReadAt(r.task, hdr, 0); err != nil {
		t.Fatal(err)
	}
	tornPage := int64(leU32(hdr[20:])) // first page of the last batch
	garbage := bytes.Repeat([]byte{0xDE}, 512)
	if _, err := r.eng.file.WriteAt(r.task, garbage, tornPage*int64(r.eng.cfg.PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := r.data.Flush(r.task); err != nil { // make the torn state durable
		t.Fatal(err)
	}
	r.reopen(t)
	if r.eng.Stats().TornRestored == 0 {
		t.Fatal("torn page not restored from DWB")
	}
	for i := 0; i < 50; i++ {
		if v, ok := get(t, r, "kv", fmt.Sprintf("key%04d", i)); !ok || v != "stable" {
			t.Fatalf("key%04d lost after torn write: %q %v", i, v, ok)
		}
	}
}

func TestShareModeWritesHalfThePages(t *testing.T) {
	run := func(mode FlushMode) (hostWrites int64) {
		r := newRig(t, mode, nil)
		if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
			t.Fatal(err)
		}
		r.data.ResetStats()
		val := bytes.Repeat([]byte{'v'}, 100)
		for i := 0; i < 400; i++ {
			tx := r.eng.Begin(r.task)
			if err := tx.Put(r.eng.Table("kv"), []byte(fmt.Sprintf("key%06d", i*37%1000)), val); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.eng.Checkpoint(r.task); err != nil {
			t.Fatal(err)
		}
		return r.data.Stats().FTL.HostWrites
	}
	on := run(DWBOn)
	sh := run(Share)
	off := run(DWBOff)
	if sh >= on {
		t.Fatalf("SHARE wrote %d pages, DWB-On wrote %d; expected fewer", sh, on)
	}
	// SHARE should be close to DWB-Off (within ~20%: share commands write
	// no data pages, only mapping deltas inside the device).
	if float64(sh) > float64(off)*1.25 {
		t.Fatalf("SHARE %d much worse than DWB-Off %d", sh, off)
	}
	// DWB-On roughly doubles the data-page traffic of DWB-Off.
	if float64(on) < float64(off)*1.5 {
		t.Fatalf("DWB-On %d not ~2x DWB-Off %d", on, off)
	}
}

func TestScanAndPrefix(t *testing.T) {
	r := newRig(t, DWBOff, nil)
	if _, err := r.eng.CreateTable(r.task, "links"); err != nil {
		t.Fatal(err)
	}
	tb := r.eng.Table("links")
	tx := r.eng.Begin(r.task)
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("n1|%02d", i)
		if err := tx.Put(tb, []byte(key), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Put(tb, []byte("n2|00"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = r.eng.Begin(r.task)
	defer tx.Rollback()
	prefix := []byte("n1|")
	count := 0
	if err := tx.Scan(tb, prefix, KeyUpperBound(prefix), func(k, v []byte) bool {
		if !bytes.HasPrefix(k, prefix) {
			t.Fatalf("scan leaked key %q", k)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Fatalf("prefix scan found %d keys", count)
	}
}

func TestMultiTableTxn(t *testing.T) {
	r := newRig(t, DWBOn, nil)
	if _, err := r.eng.CreateTable(r.task, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.eng.CreateTable(r.task, "b"); err != nil {
		t.Fatal(err)
	}
	tx := r.eng.Begin(r.task)
	if err := tx.Put(r.eng.Table("a"), []byte("k"), []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(r.eng.Table("b"), []byte("k"), []byte("vb")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r.reopen(t)
	if v, ok := get(t, r, "a", "k"); !ok || v != "va" {
		t.Fatalf("a.k = %q %v", v, ok)
	}
	if v, ok := get(t, r, "b", "k"); !ok || v != "vb" {
		t.Fatalf("b.k = %q %v", v, ok)
	}
}

func TestConcurrentClientsSerialize(t *testing.T) {
	// 4 clients over the virtual-time scheduler; the engine lock
	// serializes transactions deterministically.
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	data, err := ssd.New("data", cfg)
	if err != nil {
		t.Fatal(err)
	}
	setup := sim.NewSoloTask("setup")
	fs, err := fsim.Format(setup, data, 32)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(setup, fs, fastLogDevice(t), Config{
		PageSize: 1024, PoolBytes: 64 * 1024, FlushMode: Share,
		DWBPages: 8, DataBytes: 1024 * 1024, LogPages: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateTable(setup, "kv"); err != nil {
		t.Fatal(err)
	}
	s := sim.NewScheduler()
	for c := 0; c < 4; c++ {
		c := c
		s.Go(fmt.Sprintf("client%d", c), func(task *sim.Task) {
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 50; i++ {
				tx := eng.Begin(task)
				k := []byte(fmt.Sprintf("key%03d", rng.Intn(200)))
				v := []byte(fmt.Sprintf("c%d-i%d", c, i))
				if err := tx.Put(eng.Table("kv"), k, v); err != nil {
					t.Error(err)
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
				}
			}
		})
	}
	end := s.Run()
	if end == 0 {
		t.Fatal("no virtual time elapsed")
	}
	if eng.Stats().Commits != 200 {
		t.Fatalf("commits = %d", eng.Stats().Commits)
	}
}

func TestUncommittedTxnInvisibleAfterCrash(t *testing.T) {
	r := newRig(t, DWBOn, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}
	put(t, r, "kv", "committed", "yes")
	// Begin a txn, buffer writes, crash before Commit.
	tx := r.eng.Begin(r.task)
	if err := tx.Put(r.eng.Table("kv"), []byte("uncommitted"), []byte("no")); err != nil {
		t.Fatal(err)
	}
	r.reopen(t) // crash without commit
	if _, ok := get(t, r, "kv", "uncommitted"); ok {
		t.Fatal("uncommitted write survived crash")
	}
	if v, ok := get(t, r, "kv", "committed"); !ok || v != "yes" {
		t.Fatalf("committed write lost: %q %v", v, ok)
	}
}

func TestLargeWorkloadWithEvictionAndCheckpoints(t *testing.T) {
	r := newRig(t, Share, func(c *Config) {
		c.PoolBytes = 16 * 1024 // tiny pool: constant eviction
		c.MaxLogImages = 64     // frequent checkpoints
	})
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	model := map[string]string{}
	for i := 0; i < 1200; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(600))
		v := fmt.Sprintf("val%d", i)
		put(t, r, "kv", k, v)
		model[k] = v
	}
	if r.eng.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoints under MaxLogImages pressure")
	}
	for k, v := range model {
		if got, ok := get(t, r, "kv", k); !ok || got != v {
			t.Fatalf("%s = %q %v, want %q", k, got, ok, v)
		}
	}
	r.reopen(t)
	for k, v := range model {
		if got, ok := get(t, r, "kv", k); !ok || got != v {
			t.Fatalf("after crash %s = %q %v, want %q", k, got, ok, v)
		}
	}
}

func TestCrashLoopWithRandomWork(t *testing.T) {
	r := newRig(t, Share, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	model := map[string]string{}
	for round := 0; round < 5; round++ {
		for i := 0; i < 120; i++ {
			k := fmt.Sprintf("key%04d", rng.Intn(300))
			v := fmt.Sprintf("r%d-%d", round, i)
			put(t, r, "kv", k, v)
			model[k] = v
		}
		r.reopen(t)
		for k, v := range model {
			if got, ok := get(t, r, "kv", k); !ok || got != v {
				t.Fatalf("round %d: %s = %q %v, want %q", round, k, got, ok, v)
			}
		}
	}
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// reopenAs crashes the data device and reopens the engine under a
// (possibly different) flush mode — the mode-switch scenario behind the
// stale-DWB regression test below.
func (r *testRig) reopenAs(t *testing.T, mode FlushMode) {
	t.Helper()
	r.data.Crash()
	if err := r.data.Recover(r.task); err != nil {
		t.Fatal(err)
	}
	fs, err := fsim.Mount(r.task, r.data)
	if err != nil {
		t.Fatal(err)
	}
	r.fs = fs
	cfg := r.eng.cfg
	cfg.FlushMode = mode
	eng, err := Open(r.task, fs, r.logDev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
}

// TestStaleDWBIgnoredInNoDWBMode is the regression test for a recovery
// bug: restoreFromDWB ran regardless of flush mode, so an engine running
// without a doublewrite buffer could "restore" stale page images that an
// earlier DWB-writing epoch left behind — resurrecting old data over a
// torn home page that redo replay was about to roll forward correctly.
func TestStaleDWBIgnoredInNoDWBMode(t *testing.T) {
	r := newRig(t, DWBOn, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		put(t, r, "kv", fmt.Sprintf("key%04d", i), "old")
	}
	if err := r.eng.Checkpoint(r.task); err != nil {
		t.Fatal(err)
	}
	// Leave a small, known batch in the DWB: one more update and a second
	// checkpoint flush exactly {leaf(key0000), meta} through the DWB, so
	// the header records pages that the workload below will also dirty.
	put(t, r, "kv", "key0000", "old2")
	if err := r.eng.Checkpoint(r.task); err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, r.eng.cfg.PageSize)
	if _, err := r.eng.dwb.ReadAt(r.task, hdr, 0); err != nil {
		t.Fatal(err)
	}
	if leU32(hdr[4:]) != dwbMagic {
		t.Fatal("expected a valid DWB header after a DWB-On checkpoint")
	}
	tornPage := int64(leU32(hdr[20:])) // a home page of the stale batch

	// Switch the same tablespace to the no-DWB pipeline and overwrite
	// everything; the new values live in the redo log, not yet at home.
	r.reopenAs(t, DWBOff)
	for i := 0; i < 40; i++ {
		put(t, r, "kv", fmt.Sprintf("key%04d", i), "new")
	}

	// Tear a home page from the stale batch, as an interrupted home write
	// would, make the torn state durable, and crash.
	garbage := bytes.Repeat([]byte{0xDE}, 512)
	if _, err := r.eng.file.WriteAt(r.task, garbage, tornPage*int64(r.eng.cfg.PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := r.data.Flush(r.task); err != nil {
		t.Fatal(err)
	}
	r.reopenAs(t, DWBOff)

	if n := r.eng.Stats().TornRestored; n != 0 {
		t.Fatalf("TornRestored = %d in a no-DWB mode: recovery consulted stale DWB state", n)
	}
	for i := 0; i < 40; i++ {
		if v, ok := get(t, r, "kv", fmt.Sprintf("key%04d", i)); !ok || v != "new" {
			t.Fatalf("key%04d = %q %v after no-DWB recovery, want \"new\"", i, v, ok)
		}
	}
}

// TestEngineReadOnlyDegradation drives the data device out of spare
// blocks and checks the engine's graceful degradation contract: mutating
// operations fail fast with ErrReadOnly, reads keep serving, and the
// transition is visible in the engine stats.
func TestEngineReadOnlyDegradation(t *testing.T) {
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.FTL.SpareBlocks = 1
	data, err := ssd.New("data", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(task, fs, fastLogDevice(t), Config{
		PageSize: 1024, PoolBytes: 64 * 1024, FlushMode: DWBOn,
		DWBPages: 8, DataBytes: 1024 * 1024, LogPages: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &testRig{data: data, fs: fs, eng: eng, task: task}
	if _, err := eng.CreateTable(task, "kv"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		put(t, r, "kv", fmt.Sprintf("key%04d", i), "stable")
	}
	if err := eng.Checkpoint(task); err != nil {
		t.Fatal(err)
	}

	// Exhaust the single spare block: each round schedules one permanent
	// program fault, retiring one more block on the next flush.
	for round := 0; !data.ReadOnly() && round < 10; round++ {
		if err := data.SetFaultPlan(nand.NewFaultPlan(int64(round+1)).AtProgram(1, nand.FaultProgramPermanent)); err != nil {
			t.Fatal(err)
		}
		tx := eng.Begin(task)
		_ = tx.Put(eng.Table("kv"), []byte(fmt.Sprintf("wear%04d", round)), []byte("x"))
		_ = tx.Commit()          // may fail once the device degrades
		_ = eng.Checkpoint(task) // forces data-device programs
	}
	if err := data.SetFaultPlan(nil); err != nil {
		t.Fatal(err)
	}
	if !data.ReadOnly() {
		t.Fatal("data device did not degrade to read-only")
	}

	// The next mutating operations observe (or already observed) the
	// degradation and fail with the typed engine error.
	if err := eng.Checkpoint(task); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Checkpoint error = %v, want ErrReadOnly", err)
	}
	tx := eng.Begin(task)
	if err := tx.Put(eng.Table("kv"), []byte("late"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Commit error = %v, want ErrReadOnly", err)
	}
	if _, err := eng.CreateTable(task, "more"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("CreateTable error = %v, want ErrReadOnly", err)
	}
	st := eng.Stats()
	if !st.Degraded || st.ReadOnlyTransitions != 1 {
		t.Fatalf("stats: Degraded=%v ReadOnlyTransitions=%d", st.Degraded, st.ReadOnlyTransitions)
	}
	if !eng.Degraded() {
		t.Fatal("Degraded() = false after transition")
	}
	// Reads keep serving everything durably committed before degradation.
	for i := 0; i < 30; i++ {
		if v, ok := get(t, r, "kv", fmt.Sprintf("key%04d", i)); !ok || v != "stable" {
			t.Fatalf("key%04d = %q %v in read-only mode", i, v, ok)
		}
	}
}

func TestAtomicWriteModeCRUDAndCrash(t *testing.T) {
	r := newRig(t, AtomicWrite, nil)
	if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		put(t, r, "kv", fmt.Sprintf("key%04d", i), fmt.Sprintf("val%d", i))
	}
	r.reopen(t)
	for i := 0; i < 150; i++ {
		v, ok := get(t, r, "kv", fmt.Sprintf("key%04d", i))
		if !ok || v != fmt.Sprintf("val%d", i) {
			t.Fatalf("key%04d = %q %v after crash", i, v, ok)
		}
	}
	if r.data.Stats().FTL.AtomicWrites == 0 {
		t.Fatal("no atomic write commands issued")
	}
}

func TestAtomicWriteMatchesShareHostWrites(t *testing.T) {
	run := func(mode FlushMode) int64 {
		r := newRig(t, mode, nil)
		if _, err := r.eng.CreateTable(r.task, "kv"); err != nil {
			t.Fatal(err)
		}
		r.data.ResetStats()
		val := bytes.Repeat([]byte{'v'}, 100)
		for i := 0; i < 300; i++ {
			tx := r.eng.Begin(r.task)
			if err := tx.Put(r.eng.Table("kv"), []byte(fmt.Sprintf("key%06d", i*37%500)), val); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.eng.Checkpoint(r.task); err != nil {
			t.Fatal(err)
		}
		return r.data.Stats().FTL.HostWrites
	}
	share := run(Share)
	atomic := run(AtomicWrite)
	dwb := run(DWBOn)
	// Both single-write pipelines should land well under the doublewrite.
	if float64(atomic) > float64(dwb)*0.75 {
		t.Fatalf("atomic-write %d not well below DWB-On %d", atomic, dwb)
	}
	// And close to each other (atomic skips even the DWB area but pays
	// nothing extra; within 35% either way).
	lo, hi := float64(share)*0.65, float64(share)*1.35
	if float64(atomic) < lo || float64(atomic) > hi {
		t.Fatalf("atomic-write %d far from SHARE %d", atomic, share)
	}
}
