package innodb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"share/internal/btree"
	"share/internal/ftl"
	"share/internal/sim"
)

// recover brings an existing tablespace to a consistent state after a
// crash (or reopens a clean one — the same path handles both):
//
//  1. doublewrite restore: any home page torn by an interrupted flush is
//     rewritten from its checksum-valid copy in the doublewrite buffer;
//  2. redo replay: page images of committed transactions are written to
//     their home locations in log order (incomplete trailing transactions
//     are discarded);
//  3. a checkpoint truncates the redo log and the table registry is
//     loaded from the (now consistent) meta page.
//
// The doublewrite restore runs only in the modes that write the DWB
// (DWB-On and SHARE). In a no-DWB configuration the file may still hold a
// checksum-valid batch from an earlier epoch under a different mode;
// "restoring" those stale images over homes that the current mode already
// flushed (or that redo is about to roll forward) would resurrect old
// data, so the no-DWB path never consults it — and invalidates it, so a
// later mode switch cannot trip over it either.
func (e *Engine) recover(t *sim.Task) error {
	if e.usesDWB() {
		if err := e.restoreFromDWB(t); err != nil {
			return err
		}
	} else if err := e.invalidateDWB(t); err != nil {
		return err
	}
	if err := e.replayRedo(t); err != nil {
		return err
	}
	if err := e.fs.SyncMeta(t); err != nil {
		return err
	}
	if err := e.log.Truncate(t); err != nil {
		return err
	}
	e.pool.Drop()
	return e.loadMeta(t)
}

// usesDWB reports whether the configured flush mode writes the
// doublewrite buffer (and hence whether recovery may trust its contents).
func (e *Engine) usesDWB() bool {
	return e.cfg.FlushMode == DWBOn || e.cfg.FlushMode == Share
}

// invalidateDWB zeroes the doublewrite header so stale state from an
// earlier epoch can never be mistaken for a valid batch. A device that has
// degraded to read-only refuses the write; that is fine — the current mode
// will not read the header either.
func (e *Engine) invalidateDWB(t *sim.Task) error {
	if e.dwb.Size() == 0 {
		return nil
	}
	hdr := make([]byte, e.cfg.PageSize)
	if _, err := e.dwb.ReadAt(t, hdr, 0); err != nil {
		return nil // unreadable header: nothing a restore could trust anyway
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != checksum32(hdr[4:]) ||
		binary.LittleEndian.Uint32(hdr[4:]) != dwbMagic {
		return nil // already invalid
	}
	zero := make([]byte, e.cfg.PageSize)
	if _, err := e.dwb.WriteAt(t, zero, 0); err != nil {
		if errors.Is(err, ftl.ErrReadOnly) {
			return nil
		}
		return err
	}
	return e.dwb.Sync(t)
}

// restoreFromDWB scans the doublewrite buffer and repairs torn home pages.
func (e *Engine) restoreFromDWB(t *sim.Task) error {
	ps := int64(e.cfg.PageSize)
	hdr := make([]byte, e.cfg.PageSize)
	if _, err := e.dwb.ReadAt(t, hdr, 0); err != nil {
		return nil // empty or unreadable DWB: nothing flushed yet
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != checksum32(hdr[4:]) {
		return nil // torn DWB header: the batch never completed its first write
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != dwbMagic {
		return nil
	}
	count := int(binary.LittleEndian.Uint32(hdr[16:]))
	if count > e.cfg.DWBPages {
		return fmt.Errorf("innodb: DWB header count %d exceeds %d", count, e.cfg.DWBPages)
	}
	img := make([]byte, e.cfg.PageSize)
	home := make([]byte, e.cfg.PageSize)
	for i := 0; i < count; i++ {
		pageNo := binary.LittleEndian.Uint32(hdr[20+4*i:])
		if _, err := e.dwb.ReadAt(t, img, ps*int64(1+i)); err != nil {
			return err
		}
		if !btree.VerifyChecksum(img) || btree.PageNo(img) != pageNo {
			continue // torn copy inside the DWB itself: home was not touched
		}
		if _, err := e.file.ReadAt(t, home, ps*int64(pageNo)); err != nil {
			return err
		}
		if btree.VerifyChecksum(home) {
			continue // home intact; redo (if any) will roll it forward
		}
		if _, err := e.file.WriteAt(t, img, ps*int64(pageNo)); err != nil {
			return err
		}
		atomic.AddInt64(&e.st.TornRestored, 1)
	}
	return e.file.Sync(t)
}

// replayRedo applies committed page images from the redo log.
func (e *Engine) replayRedo(t *sim.Task) error {
	recs, err := e.log.ReadAll(t)
	if err != nil {
		return err
	}
	ps := int64(e.cfg.PageSize)
	var pending [][]byte // images of the transaction being scanned
	for _, rec := range recs {
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case recPageImage:
			if len(rec) != 5+e.cfg.PageSize {
				return fmt.Errorf("innodb: bad page-image record length %d", len(rec))
			}
			pending = append(pending, rec)
		case recCommit:
			for _, img := range pending {
				pageNo := binary.LittleEndian.Uint32(img[1:])
				if _, err := e.file.WriteAt(t, img[5:], ps*int64(pageNo)); err != nil {
					return err
				}
				atomic.AddInt64(&e.st.RedoApplied, 1)
			}
			pending = pending[:0]
		default:
			return fmt.Errorf("innodb: unknown redo record kind %d", rec[0])
		}
	}
	// pending now holds images of a transaction whose commit record never
	// became durable: discard them.
	return e.file.Sync(t)
}
