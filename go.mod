module share

go 1.22
