// Zero-copy file duplication through the file system's SHARE ioctl: the
// "file copy operations that can occur almost without copying data" case
// from §1 of the paper (the same idea as reflinks/cp --reflink, pushed
// down into the FTL).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"share"
	"share/internal/core"
	"share/internal/fsim"
)

func main() {
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: 1024})
	if err != nil {
		log.Fatal(err)
	}
	t := share.NewTask("cp")
	fs, err := fsim.Format(t, dev, 64)
	if err != nil {
		log.Fatal(err)
	}

	// Create a ~10 MiB file.
	src, err := fs.Create(t, "big.dat")
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 10<<20)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := src.WriteAt(t, data, 0); err != nil {
		log.Fatal(err)
	}
	if err := src.Sync(t); err != nil {
		log.Fatal(err)
	}

	before := dev.Stats()
	beforeTime := t.Now()
	dst, err := core.CopyFile(t, fs, "big.copy", "big.dat")
	if err != nil {
		log.Fatal(err)
	}
	after := dev.Stats()

	fmt.Printf("copied %d MiB with %d data-page writes and %d SHARE pairs in %.2f virtual ms\n",
		dst.Size()>>20,
		after.FTL.HostWrites-before.FTL.HostWrites,
		after.FTL.SharePairs-before.FTL.SharePairs,
		float64(t.Now()-beforeTime)/1e6)

	// Verify, then prove the copies are independent: overwriting the
	// original must not change the copy (copy-on-write at the FTL).
	got := make([]byte, len(data))
	if _, err := dst.ReadAt(t, got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("copy differs from original")
	}
	if _, err := src.WriteAt(t, []byte("scribble"), 0); err != nil {
		log.Fatal(err)
	}
	if _, err := dst.ReadAt(t, got[:8], 0); err != nil {
		log.Fatal(err)
	}
	if string(got[:8]) == "scribble" {
		log.Fatal("copy aliased the original")
	}
	fmt.Println("copy verified and independent of the original")
}
