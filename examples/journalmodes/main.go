// Journal modes: the §3.3 SQLite scenario. The same OLTP update stream
// runs against an embedded B+tree database under its three commit
// protocols — rollback journal, WAL, and journaling turned off with
// SHARE — and prints the throughput and write-volume cost of each.
package main

import (
	"fmt"
	"log"

	"share"
	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/sqlmini"
)

func run(mode sqlmini.Mode) {
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: 512})
	if err != nil {
		log.Fatal(err)
	}
	t := share.NewTask("sql")
	fs, err := fsim.Format(t, dev, 64)
	if err != nil {
		log.Fatal(err)
	}
	db, err := sqlmini.Open(t, fs, sqlmini.Config{Mode: mode, CheckpointEvery: 128})
	if err != nil {
		log.Fatal(err)
	}

	val := make([]byte, 120)
	dev.ResetStats()
	start := t.Now()
	const txns = 500
	for i := 0; i < txns; i++ {
		key := []byte(fmt.Sprintf("row%04d", i%200))
		if err := db.Update(t, func(tx *sqlmini.Tx) error {
			return tx.Put(key, val)
		}); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := float64(t.Now()-start) / float64(sim.Second)
	st := dev.Stats()
	fmt.Printf("%-18s %6.0f tps   %6d host page writes   %5d share pairs\n",
		mode, float64(txns)/elapsed, st.FTL.HostWrites, st.FTL.SharePairs)

	// Prove durability: crash and read everything back.
	dev.Crash()
	if err := dev.Recover(t); err != nil {
		log.Fatal(err)
	}
	fs2, err := fsim.Mount(t, dev)
	if err != nil {
		log.Fatal(err)
	}
	db2, err := sqlmini.Open(t, fs2, sqlmini.Config{Mode: mode, CheckpointEvery: 128})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, ok, err := db2.Get(t, []byte(fmt.Sprintf("row%04d", i))); err != nil || !ok {
			log.Fatalf("%v: row%04d lost after crash (%v %v)", mode, i, ok, err)
		}
	}
}

func main() {
	fmt.Println("500 single-row transactions, 200-row working set:")
	for _, mode := range []sqlmini.Mode{sqlmini.Rollback, sqlmini.WAL, sqlmini.Share} {
		run(mode)
	}
	fmt.Println("\nall modes recovered every row after a power cut;")
	fmt.Println("SHARE does it with no journal and no second write.")
}
