// Quickstart: open a simulated SHARE-capable SSD, write two pages, and
// remap one logical page onto the other's physical page with a single
// SHARE command — the paper's core primitive. No data is copied; both
// logical addresses then read the same bytes.
package main

import (
	"bytes"
	"fmt"
	"log"

	"share"
)

func main() {
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: 256})
	if err != nil {
		log.Fatal(err)
	}
	t := share.NewTask("quickstart")

	old := bytes.Repeat([]byte("old!"), dev.PageSize()/4)
	new_ := bytes.Repeat([]byte("NEW."), dev.PageSize()/4)

	// A database would write the new version of page 7 into a journal
	// location (page 1000) first...
	if err := dev.WritePage(t, 7, old); err != nil {
		log.Fatal(err)
	}
	if err := dev.WritePage(t, 1000, new_); err != nil {
		log.Fatal(err)
	}
	if err := dev.Flush(t); err != nil {
		log.Fatal(err)
	}

	// ...and then, instead of writing it AGAIN at its home location,
	// remap home onto the journal copy. The command is atomic and durable
	// on return.
	if err := dev.Share(t, []share.Pair{{Dst: 7, Src: 1000, Len: 1}}); err != nil {
		log.Fatal(err)
	}

	got := make([]byte, dev.PageSize())
	if err := dev.ReadPage(t, 7, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page 7 now reads %q... (no second write happened)\n", got[:8])

	st := dev.Stats()
	fmt.Printf("host writes: %d pages, SHARE commands: %d, virtual time: %.2f ms\n",
		st.FTL.HostWrites, st.FTL.Shares, float64(t.Now())/1e6)

	// The remap survives power failure: crash and recover the device.
	dev.Crash()
	if err := dev.Recover(t); err != nil {
		log.Fatal(err)
	}
	if err := dev.ReadPage(t, 7, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+recovery page 7 still reads %q...\n", got[:8])
}
