// Zero-copy compaction: the Couchbase scenario from §3.3 and Figure 3 of
// the paper. An append-only document store accumulates stale versions;
// the original compaction copies every live document into a new file,
// while the SHARE compaction fallocates the new file and just remaps —
// the documents never move physically.
package main

import (
	"fmt"
	"log"

	"share"
	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/sim"
)

func run(shareMode bool) {
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: 1024})
	if err != nil {
		log.Fatal(err)
	}
	t := share.NewTask("compactor")
	fs, err := fsim.Format(t, dev, 64)
	if err != nil {
		log.Fatal(err)
	}
	st, err := couch.Open(t, fs, couch.Config{ShareMode: shareMode, BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}

	// Insert documents, then churn updates so most of the file is stale.
	val := make([]byte, 4000)
	for i := 0; i < 400; i++ {
		if err := st.Set(t, []byte(fmt.Sprintf("doc%04d", i)), val); err != nil {
			log.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 400; i++ {
			if err := st.Set(t, []byte(fmt.Sprintf("doc%04d", i)), val); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := st.Commit(t); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mode=%v file=%.1fMB stale=%.0f%%\n",
		map[bool]string{false: "original", true: "SHARE"}[shareMode],
		float64(st.FileSize())/(1<<20), 100*st.StaleRatio())

	cs, err := st.Compact(t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  compaction: %d docs, %.2f virtual seconds, %.2f MB written\n",
		cs.DocsMoved, float64(cs.Elapsed)/float64(sim.Second),
		float64(cs.BytesWritten)/(1<<20))

	// Everything still readable.
	for i := 0; i < 400; i++ {
		if _, ok, err := st.Get(t, []byte(fmt.Sprintf("doc%04d", i))); err != nil || !ok {
			log.Fatalf("doc%04d lost: %v %v", i, ok, err)
		}
	}
	fmt.Printf("  all 400 documents verified after compaction\n\n")
}

func main() {
	run(false)
	run(true)
}
