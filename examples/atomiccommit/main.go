// Atomic multi-page commit without a journal: the SQLite scenario from
// §3.3 of the paper. A transaction stages new versions of several pages
// in a shadow area, then one batched SHARE command installs all of them
// at their home locations atomically — no rollback journal, no write-ahead
// log, no second write of the data.
//
// The example commits a "bank transfer" touching three pages and crashes
// the device at the worst possible moments to show all-or-nothing
// behaviour.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"share"
	"share/internal/core"
)

const accounts = 8 // one account balance per page, pages 0..7

func balance(dev *share.Device, t *share.Task, page uint32) uint64 {
	buf := make([]byte, dev.PageSize())
	if err := dev.ReadPage(t, page, buf); err != nil {
		log.Fatal(err)
	}
	return binary.LittleEndian.Uint64(buf)
}

func setBalance(buf []byte, v uint64) { binary.LittleEndian.PutUint64(buf, v) }

func total(dev *share.Device, t *share.Task) uint64 {
	var sum uint64
	for p := uint32(0); p < accounts; p++ {
		sum += balance(dev, t, p)
	}
	return sum
}

func main() {
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: 256})
	if err != nil {
		log.Fatal(err)
	}
	t := share.NewTask("bank")

	// Initialize accounts with 100 units each and make them durable.
	buf := make([]byte, dev.PageSize())
	for p := uint32(0); p < accounts; p++ {
		setBalance(buf, 100)
		if err := dev.WritePage(t, p, buf); err != nil {
			log.Fatal(err)
		}
	}
	if err := dev.Flush(t); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial total: %d\n", total(dev, t))

	// The AtomicWriter stages into a scratch area (pages 2000+).
	w, err := core.NewAtomicWriter(dev, 2000, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Transaction 1: move 30 units from account 0 to accounts 1 and 2 —
	// three pages must change together. Stage, then crash BEFORE commit.
	stage := func(page uint32, v uint64) {
		setBalance(buf, v)
		if err := w.Stage(t, page, buf); err != nil {
			log.Fatal(err)
		}
	}
	stage(0, 70)
	stage(1, 115)
	stage(2, 115)
	fmt.Println("crash before commit...")
	dev.Crash()
	if err := dev.Recover(t); err != nil {
		log.Fatal(err)
	}
	w.Abort()
	fmt.Printf("after recovery: balances %d/%d/%d, total %d (transaction invisible)\n",
		balance(dev, t, 0), balance(dev, t, 1), balance(dev, t, 2), total(dev, t))

	// Transaction 2: same transfer, committed this time; crash right after.
	stage(0, 70)
	stage(1, 115)
	stage(2, 115)
	if _, err := w.Commit(t); err != nil {
		log.Fatal(err)
	}
	fmt.Println("crash after commit...")
	dev.Crash()
	if err := dev.Recover(t); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: balances %d/%d/%d, total %d (all three pages installed)\n",
		balance(dev, t, 0), balance(dev, t, 1), balance(dev, t, 2), total(dev, t))

	if total(dev, t) != accounts*100 {
		log.Fatal("money was created or destroyed!")
	}
	fmt.Println("invariant held: atomic commit with zero journal writes")
}
