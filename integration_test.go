// Full-stack integration tests: device → FTL → file system → engine →
// workload, with power cuts injected between phases. These complement the
// per-module tests by exercising the exact layering the experiments use.
package share_test

import (
	"bytes"
	"fmt"
	"testing"

	"share"
	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/innodb"
	"share/internal/linkbench"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/sqlmini"
	"share/internal/ssd"
	"share/internal/ycsb"
)

func newStack(t *testing.T, blocks int) (*share.Device, *fsim.FS, *sim.Task) {
	t.Helper()
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: blocks, PageSize: 512, PagesPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	task := share.NewTask("stack")
	fs, err := fsim.Format(task, dev, 64)
	if err != nil {
		t.Fatal(err)
	}
	return dev, fs, task
}

func powerCycle(t *testing.T, dev *share.Device, task *sim.Task) *fsim.FS {
	t.Helper()
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs, err := fsim.Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func fastLog(t *testing.T) *ssd.Device {
	t.Helper()
	cfg := ssd.DefaultConfig(256)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond, Program: 50 * sim.Microsecond,
		Erase: 500 * sim.Microsecond, Transfer: 5 * sim.Microsecond,
	}
	cfg.FTL.PowerCapacitor = true
	dev, err := ssd.New("log", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestIntegrationLinkBenchSurvivesPowerCut runs a small LinkBench load +
// benchmark in SHARE mode, power-cycles the machine, and verifies the
// engine recovers and keeps serving.
func TestIntegrationLinkBenchSurvivesPowerCut(t *testing.T) {
	dev, fs, task := newStack(t, 1024)
	logDev := fastLog(t)
	cfg := innodb.Config{
		PageSize: 1024, PoolBytes: 128 * 1024, FlushMode: innodb.Share,
		DWBPages: 16, DataBytes: 4 << 20, LogPages: 4096,
	}
	eng, err := innodb.Open(task, fs, logDev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := linkbench.Config{Nodes: 400, Clients: 4, Requests: 150, Warmup: 20, Seed: 5}
	if err := linkbench.Load(task, eng, lcfg); err != nil {
		t.Fatal(err)
	}
	res, err := linkbench.Run(eng, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	fs2 := powerCycle(t, dev, task)
	eng2, err := innodb.Open(task, fs2, logDev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The graph is still consistent enough to run another round.
	if _, err := linkbench.Run(eng2, lcfg); err != nil {
		t.Fatal(err)
	}
	if err := dev.FTLForTest().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationYCSBWithCompactionAndPowerCut churns a SHARE-mode couch
// store through compactions, power-cycles, and verifies every record.
func TestIntegrationYCSBWithCompactionAndPowerCut(t *testing.T) {
	dev, fs, task := newStack(t, 2048)
	ccfg := couch.Config{ShareMode: true, BatchSize: 8, CompactThreshold: 0.4, DocCacheEntries: 32}
	st, err := couch.Open(task, fs, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ycfg := ycsb.Config{Records: 120, ValueSize: 900, Ops: 700, Workload: ycsb.WorkloadF, Seed: 3, AutoCompact: true}
	if err := ycsb.Load(task, st, ycfg); err != nil {
		t.Fatal(err)
	}
	res, err := ycsb.Run(task, st, ycfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compactions == 0 {
		t.Fatal("expected at least one compaction")
	}
	fs2 := powerCycle(t, dev, task)
	st2, err := couch.Open(task, fs2, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if _, ok, err := st2.Get(task, ycsb.Key(i)); err != nil || !ok {
			t.Fatalf("record %d lost after compactions + power cut: %v %v", i, ok, err)
		}
	}
	if err := dev.FTLForTest().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationMixedTenants runs two engines (sqlmini SHARE mode and a
// couch store) side by side on ONE device/file system — the multi-tenant
// sharing case — with interleaved commits and a final power cut.
func TestIntegrationMixedTenants(t *testing.T) {
	dev, fs, task := newStack(t, 2048)
	db, err := sqlmini.Open(task, fs, sqlmini.Config{Mode: sqlmini.Share, Name: "tenant.sql"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := couch.Open(task, fs, couch.Config{ShareMode: true, BatchSize: 4, Name: "tenant.couch"})
	if err != nil {
		t.Fatal(err)
	}
	doc := bytes.Repeat([]byte{0xD0}, 700)
	for i := 0; i < 120; i++ {
		k := []byte(fmt.Sprintf("k%04d", i%40))
		if err := db.Update(task, func(tx *sqlmini.Tx) error {
			return tx.Put(k, []byte(fmt.Sprintf("sql-%d", i)))
		}); err != nil {
			t.Fatal(err)
		}
		if err := st.Set(task, k, doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(task); err != nil {
		t.Fatal(err)
	}
	fs2 := powerCycle(t, dev, task)
	db2, err := sqlmini.Open(task, fs2, sqlmini.Config{Mode: sqlmini.Share, Name: "tenant.sql"})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := couch.Open(task, fs2, couch.Config{ShareMode: true, BatchSize: 4, Name: "tenant.couch"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 80; i < 120; i++ { // last writers
		k := []byte(fmt.Sprintf("k%04d", i%40))
		v, ok, err := db2.Get(task, k)
		if err != nil || !ok {
			t.Fatalf("sql %s: %v %v", k, ok, err)
		}
		if string(v) != fmt.Sprintf("sql-%d", i) {
			t.Fatalf("sql %s = %q", k, v)
		}
		dv, ok, err := st2.Get(task, k)
		if err != nil || !ok || !bytes.Equal(dv, doc) {
			t.Fatalf("couch %s bad after power cut: %v %v", k, ok, err)
		}
	}
	if err := dev.FTLForTest().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationPublicAPIWithAging exercises the public facade: age a
// drive, then use SHARE through it and survive a crash, with the FTL
// invariants checked throughout.
func TestIntegrationPublicAPIWithAging(t *testing.T) {
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: 256, PageSize: 512, PagesPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	task := share.NewTask("age")
	if err := dev.Age(task, 0.8, 0.5, 9); err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{0xA0}, 512)
	b := bytes.Repeat([]byte{0xB0}, 512)
	if err := dev.WritePage(task, 10, a); err != nil {
		t.Fatal(err)
	}
	if err := dev.WritePage(task, 7000, b); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(task); err != nil {
		t.Fatal(err)
	}
	if err := dev.Share(task, []share.Pair{{Dst: 10, Src: 7000, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := dev.ReadPage(task, 10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("share on aged drive lost across crash")
	}
	if err := dev.FTLForTest().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
