package share_test

import (
	"errors"
	"strings"
	"testing"

	"share"
	"share/internal/nand"
)

func smallTier(role share.TierRole) share.Tier {
	return share.Tier{Role: role, Opts: share.DeviceOptions{
		Blocks: 64, PageSize: 512, PagesPerBlock: 16,
	}}
}

func TestOpenTiersThreeDevices(t *testing.T) {
	tiers, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierData),
		smallTier(share.TierLog),
		smallTier(share.TierCache),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if tiers.Data == nil || tiers.Log == nil || tiers.Cache == nil {
		t.Fatalf("missing devices: %+v", tiers)
	}
	// Each tier is its own device with its own geometry.
	if tiers.Data == tiers.Cache || tiers.Data == tiers.Log {
		t.Fatal("tiers share a device")
	}
}

func TestOpenTiersDataOnly(t *testing.T) {
	tiers, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierData),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if tiers.Data == nil || tiers.Log != nil || tiers.Cache != nil {
		t.Fatalf("want data only, got %+v", tiers)
	}
}

func wantTierError(t *testing.T, err error, role share.TierRole, msg string) *share.TierConfigError {
	t.Helper()
	if err == nil {
		t.Fatalf("want TierConfigError containing %q, got nil", msg)
	}
	var te *share.TierConfigError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a *TierConfigError", err)
	}
	if te.Role != role {
		t.Fatalf("error role = %q, want %q", te.Role, role)
	}
	if !strings.Contains(err.Error(), msg) {
		t.Fatalf("error %q does not mention %q", err.Error(), msg)
	}
	return te
}

func TestOpenTiersRejectsDuplicateRoles(t *testing.T) {
	_, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierData),
		smallTier(share.TierCache),
		smallTier(share.TierCache),
	}})
	wantTierError(t, err, share.TierCache, "duplicate role")
}

func TestOpenTiersRejectsUnknownRole(t *testing.T) {
	_, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierData),
		smallTier(share.TierRole("scratch")),
	}})
	wantTierError(t, err, share.TierRole("scratch"), "unknown role")
}

func TestOpenTiersRequiresDataTier(t *testing.T) {
	_, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierLog),
		smallTier(share.TierCache),
	}})
	wantTierError(t, err, share.TierData, "missing")
}

func TestOpenTiersRejectsCacheWithoutGCHeadroom(t *testing.T) {
	// 12 blocks at 5% over-provisioning truncate to zero spare erase
	// blocks: the cache tier would be read-only after its first few fills.
	cache := share.Tier{Role: share.TierCache, Opts: share.DeviceOptions{
		Blocks: 12, PageSize: 512, PagesPerBlock: 16, OverProvision: 0.05,
	}}
	_, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierData), cache,
	}})
	wantTierError(t, err, share.TierCache, "no GC headroom")

	// The same block count with the default over-provisioning passes.
	cache.Opts.OverProvision = 0.10
	if _, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierData), cache,
	}}); err != nil {
		t.Fatalf("headroom satisfied but rejected: %v", err)
	}
}

func TestOpenTiersRejectsFaultPlanGeometryMismatch(t *testing.T) {
	// A fault plan naming block 9999 cannot fit a 64-block cache tier.
	plan := share.NewFaultPlan(1)
	plan.FactoryBad = []int{9999}
	cache := smallTier(share.TierCache)
	cache.Opts.Fault = plan
	_, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierData), cache,
	}})
	te := wantTierError(t, err, share.TierCache, "cannot open device")
	if !errors.Is(te, nand.ErrFaultPlan) {
		t.Fatalf("cause %v does not unwrap to nand.ErrFaultPlan", te.Err)
	}
}

func TestOpenTiersDevicesUsable(t *testing.T) {
	tiers, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		smallTier(share.TierData),
		smallTier(share.TierCache),
	}})
	if err != nil {
		t.Fatal(err)
	}
	task := share.NewTask("t")
	data := make([]byte, 512)
	data[0] = 0xEE
	if err := tiers.Cache.WritePage(task, 3, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := tiers.Cache.ReadPage(task, 3, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xEE {
		t.Fatal("cache tier device round-trip failed")
	}
}
